"""FaultPlan unit tests: determinism, rule bookkeeping, serialisation.

The contract under test: every injection decision is a pure function of
``(seed, kind, site, counter)``, so two plans built from the same spec
make byte-identical decisions in any process — which is what makes a
chaos run replayable from one integer.
"""

import struct

import pytest

from repro.resilience import (
    FaultPlan,
    FaultRule,
    active_fault_plan,
    clear_fault_plan,
    fault_injection,
    install_fault_plan,
)


def _decisions(plan, site, n=40):
    return [plan.frame_fault(site) for _ in range(n)]


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        def make():
            return FaultPlan(seed=7, drop=FaultRule(rate=0.3))

        assert _decisions(make(), "worker.send") == _decisions(
            make(), "worker.send"
        )

    def test_different_seeds_diverge(self):
        a = _decisions(FaultPlan(seed=1, drop=FaultRule(rate=0.5)), "s")
        b = _decisions(FaultPlan(seed=2, drop=FaultRule(rate=0.5)), "s")
        assert a != b

    def test_sites_have_independent_streams(self):
        plan = FaultPlan(seed=3, drop=FaultRule(rate=0.5))
        assert _decisions(plan, "worker.send") != _decisions(
            plan, "client.send"
        )

    def test_rate_zero_never_fires_rate_one_always(self):
        silent = FaultPlan(seed=5, drop=FaultRule(rate=0.0))
        assert _decisions(silent, "s") == [None] * 40
        loud = FaultPlan(seed=5, drop=FaultRule(rate=1.0))
        assert _decisions(loud, "s") == ["drop"] * 40

    def test_roundtrip_preserves_decisions(self):
        plan = FaultPlan(
            seed=11,
            drop=FaultRule(rate=0.4, limit=5, after=2, sites=("a", "b")),
            corrupt=FaultRule(rate=0.2),
            kill_worker_after_leases=3,
            crash_client_after_done=2,
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.seed == plan.seed
        assert clone.drop == plan.drop
        assert clone.corrupt == plan.corrupt
        assert clone.kill_worker_after_leases == 3
        assert clone.crash_client_after_done == 2
        assert _decisions(plan, "a") == _decisions(clone, "a")


class TestRuleBookkeeping:
    def test_limit_caps_injections(self):
        plan = FaultPlan(seed=0, drop=FaultRule(rate=1.0, limit=3))
        fired = [f for f in _decisions(plan, "s") if f is not None]
        assert len(fired) == 3

    def test_after_skips_leading_events(self):
        plan = FaultPlan(seed=0, drop=FaultRule(rate=1.0, after=5))
        got = _decisions(plan, "s", n=8)
        assert got[:5] == [None] * 5
        assert got[5:] == ["drop"] * 3

    def test_sites_filter(self):
        plan = FaultPlan(
            seed=0, drop=FaultRule(rate=1.0, sites=("worker.send",))
        )
        assert plan.frame_fault("client.send") is None
        assert plan.frame_fault("worker.send") == "drop"

    def test_priority_order_drop_wins(self):
        plan = FaultPlan(
            seed=0,
            drop=FaultRule(rate=1.0),
            corrupt=FaultRule(rate=1.0),
        )
        assert plan.frame_fault("s") == "drop"

    def test_crash_client_fires_once(self):
        plan = FaultPlan(seed=0, crash_client_after_done=2)
        assert not plan.crash_client(1)
        assert plan.crash_client(2)
        assert not plan.crash_client(3)  # at most one crash per plan

    def test_kill_worker_threshold(self):
        plan = FaultPlan(seed=0, kill_worker_after_leases=2)
        assert not plan.kill_worker(1)
        assert plan.kill_worker(2)
        assert not FaultPlan(seed=0).kill_worker(100)


class TestCorruptPayload:
    def test_preserves_header_and_length(self):
        plan = FaultPlan(seed=9, corrupt=FaultRule(rate=1.0))
        payload = struct.pack(">I", 20) + b'{"v": 1, "abcdefghij"'
        mangled = plan.corrupt_payload(payload, "s")
        assert len(mangled) == len(payload)
        assert mangled[:4] == payload[:4]
        assert mangled[4:] != payload[4:]

    def test_deterministic_flips(self):
        payload = struct.pack(">I", 16) + b"0123456789abcdef"
        a = FaultPlan(seed=4, corrupt=FaultRule(rate=1.0))
        b = FaultPlan(seed=4, corrupt=FaultRule(rate=1.0))
        assert a.corrupt_payload(payload, "s") == b.corrupt_payload(
            payload, "s"
        )

    def test_header_only_payload_untouched(self):
        plan = FaultPlan(seed=0, corrupt=FaultRule(rate=1.0))
        assert plan.corrupt_payload(b"\x00\x00\x00\x00", "s") == b"\x00\x00\x00\x00"


class TestInstallation:
    def test_default_is_no_plan(self):
        assert active_fault_plan() is None

    def test_install_and_clear(self):
        plan = FaultPlan(seed=1)
        install_fault_plan(plan)
        try:
            assert active_fault_plan() is plan
        finally:
            clear_fault_plan()
        assert active_fault_plan() is None

    def test_context_manager_restores_previous(self):
        outer = FaultPlan(seed=1)
        inner = FaultPlan(seed=2)
        with fault_injection(outer):
            with fault_injection(inner):
                assert active_fault_plan() is inner
            assert active_fault_plan() is outer
        assert active_fault_plan() is None

    def test_none_plan_context_is_noop(self):
        with fault_injection(None):
            assert active_fault_plan() is None


class TestWireIntegration:
    def test_no_plan_leaves_frames_byte_identical(self):
        # The zero-cost default: without an installed plan, send_frame
        # produces exactly the bytes it always did.
        import socket

        from repro.distributed.wire import send_frame

        def frame_bytes():
            a, b = socket.socketpair()
            try:
                send_frame(a, {"v": 1, "x": [1, 2, 3]}, site="worker.send")
                return b.recv(4096)
            finally:
                a.close()
                b.close()

        baseline = frame_bytes()
        assert active_fault_plan() is None
        assert frame_bytes() == baseline

    def test_drop_raises_injected_fault(self):
        import socket

        from repro.resilience import InjectedFault
        from repro.distributed.wire import send_frame

        plan = FaultPlan(seed=0, drop=FaultRule(rate=1.0))
        a, b = socket.socketpair()
        try:
            with fault_injection(plan):
                with pytest.raises(InjectedFault) as err:
                    send_frame(a, {"v": 1}, site="worker.send")
            assert err.value.kind == "drop"
            assert err.value.site == "worker.send"
            assert isinstance(err.value, ConnectionError)
        finally:
            a.close()
            b.close()

    def test_unsited_sends_are_never_faulted(self):
        import socket

        from repro.distributed.wire import recv_frame, send_frame

        plan = FaultPlan(seed=0, drop=FaultRule(rate=1.0))
        a, b = socket.socketpair()
        try:
            with fault_injection(plan):
                send_frame(a, {"v": 1})  # no site: e.g. broker replies
            assert recv_frame(b) == {"v": 1}
        finally:
            a.close()
            b.close()
