"""Cost-accounting and worst-start cover tests."""

import numpy as np
import pytest

from repro.core import (
    cobra_transmission_report,
    per_vertex_load,
    worst_start_cover,
)
from repro.graphs import complete_graph, cycle_graph, path_graph, petersen_graph


class TestTransmissionReport:
    def test_basic_accounting(self):
        rep = cobra_transmission_report(complete_graph(16), runs=10, rng=1)
        assert rep.runs == 10
        assert rep.rounds.value >= 4.0  # log2(16)
        # Total messages = 2 * sum of active sizes >= 2 * rounds.
        assert rep.total_messages.value >= 2 * rep.rounds.value
        assert 0.0 < rep.peak_active_fraction <= 1.0

    def test_messages_per_vertex_scaling(self):
        rep = cobra_transmission_report(complete_graph(32), runs=10, rng=2)
        assert rep.messages_per_vertex.value == pytest.approx(
            rep.total_messages.value / 32
        )

    def test_b1_is_a_single_walker(self):
        g = cycle_graph(17)
        r1 = cobra_transmission_report(g, runs=10, branching=1, rng=3)
        r2 = cobra_transmission_report(g, runs=10, branching=2, rng=4)
        # b=1 is one walker: exactly 1 message per round, active set 1.
        assert r1.total_messages.value == pytest.approx(r1.rounds.value)
        assert r1.peak_active_fraction == pytest.approx(1 / 17)
        # b=2 covers in far fewer rounds (the paper's speed trade).
        assert r2.rounds.value < r1.rounds.value


class TestPerVertexLoad:
    def test_load_conservation(self):
        g = petersen_graph()
        load = per_vertex_load(g, rng=5)
        assert load.shape == (10,)
        assert load.sum() > 0
        assert load[0] >= 2  # the start sends b = 2 in round 1

    def test_b1_load_is_walk_visits(self):
        g = cycle_graph(9)
        load = per_vertex_load(g, rng=6, branching=1)
        # One walker: total transmissions = number of rounds.
        assert load.sum() >= 8

    def test_cap_raises(self):
        with pytest.raises(RuntimeError, match="failed to cover"):
            per_vertex_load(cycle_graph(64), rng=1, max_rounds=2)


class TestWorstStartCover:
    def test_all_starts_small_graph(self):
        prof = worst_start_cover(path_graph(6), runs_per_start=8, seed=1)
        assert prof.starts.shape == (6,)
        assert prof.cover_of_g == pytest.approx(prof.means.max())
        assert prof.worst_start in prof.starts

    def test_path_worst_is_endpoint_best_is_middle(self):
        prof = worst_start_cover(path_graph(9), runs_per_start=24, seed=2)
        # Endpoints must be worse than the centre.
        assert prof.worst_start in (0, 1, 7, 8)
        assert prof.best_start() in (2, 3, 4, 5, 6)

    def test_sampled_starts_large_graph(self):
        prof = worst_start_cover(
            cycle_graph(64), runs_per_start=4, max_starts=8, seed=3
        )
        assert len(prof.starts) <= 8

    def test_deterministic(self):
        a = worst_start_cover(path_graph(5), runs_per_start=6, seed=9)
        b = worst_start_cover(path_graph(5), runs_per_start=6, seed=9)
        assert np.allclose(a.means, b.means)
