"""Edge-case and failure-injection tests for the process engines.

These cover the boundary graphs and parameterisations a downstream user
can hit: 2-vertex graphs, extreme branching factors, ρ at its limits,
the lazy variant stacked with every policy, and cap/exception paths.
"""

import numpy as np
import pytest

from repro.core import (
    BernoulliBranching,
    BipsProcess,
    CobraProcess,
    FixedBranching,
    bips_exact,
    cover_time_samples,
    infection_time,
    verify_duality_exact,
)
from repro.graphs import Graph, complete_graph, cycle_graph, path_graph


class TestTinyGraphs:
    def test_two_vertex_path(self, rng):
        g = path_graph(2)
        res = CobraProcess(g).run(0, rng)
        assert res.covered
        assert res.cover_time == 1  # the only neighbour is hit immediately

    def test_two_vertex_bips(self, rng):
        g = path_graph(2)
        res = BipsProcess(g, 0).run(rng)
        assert res.infected_all
        assert res.infection_time == 1  # vertex 1 always selects vertex 0

    def test_single_vertex_graph(self, rng):
        g = Graph(1, [])
        res = BipsProcess(g, 0).run(rng)
        assert res.infected_all
        assert res.infection_time == 0

    def test_triangle_duality(self):
        g = cycle_graph(3)
        report = verify_duality_exact(g, 0, [1], t_max=10)
        assert report.max_abs_diff < 1e-12


class TestExtremeBranching:
    def test_b10_covers_very_fast(self, rng):
        g = complete_graph(64)
        res = CobraProcess(g, branching=10).run(0, rng)
        assert res.covered
        assert res.cover_time <= 8

    def test_b10_bips(self, rng):
        res = BipsProcess(complete_graph(32), 0, branching=10).run(rng)
        assert res.infected_all

    def test_rho_one_equals_b2_distribution(self):
        # BernoulliBranching(1.0) makes the second pick always: same
        # law as FixedBranching(2).
        g = cycle_graph(15)
        a = cover_time_samples(g, runs=80, branching=FixedBranching(2), rng=1)
        b = cover_time_samples(g, runs=80, branching=BernoulliBranching(1.0), rng=2)
        se = np.sqrt(a.var(ddof=1) / 80 + b.var(ddof=1) / 80)
        assert abs(a.mean() - b.mean()) < 4 * se

    def test_tiny_rho_still_completes(self):
        t = infection_time(cycle_graph(9), 0, branching=BernoulliBranching(0.05), rng=3)
        assert t >= 1


class TestLazyCombinations:
    @pytest.mark.parametrize("branching", [1, 2, 3, BernoulliBranching(0.5)])
    def test_lazy_with_every_policy(self, branching, rng):
        g = cycle_graph(8)  # bipartite: lazy is the prescribed variant
        res = CobraProcess(g, branching=branching, lazy=True).run(0, rng)
        assert res.covered
        res2 = BipsProcess(g, 0, branching=branching, lazy=True).run(rng)
        assert res2.infected_all

    def test_lazy_exact_engine_agrees_with_simulation(self):
        # Exact lazy BIPS survival vs Monte Carlo on a tiny path.
        g = path_graph(4)
        ex = bips_exact(g, 0, lazy=True, t_max=40)
        exact_mean = float(ex.survival().sum())
        times = [
            BipsProcess(g, 0, lazy=True).run(np.random.default_rng(50 + i)).infection_time
            for i in range(500)
        ]
        arr = np.asarray(times, dtype=np.float64)
        sem = arr.std(ddof=1) / np.sqrt(arr.shape[0])
        assert abs(arr.mean() - exact_mean) < 4.5 * sem + 0.05


class TestCapsAndErrors:
    def test_zero_round_cap(self, rng):
        res = CobraProcess(cycle_graph(8)).run(0, rng, max_rounds=0)
        assert not res.covered
        assert res.rounds_run == 0

    def test_batch_zero_cap(self, rng):
        res = CobraProcess(cycle_graph(8)).run_batch(
            np.zeros(3, dtype=np.int64), rng, max_rounds=0
        )
        assert not res.all_covered
        assert res.covered_fraction() == 0.0

    def test_bips_invalid_source(self):
        with pytest.raises(ValueError):
            BipsProcess(path_graph(3), 5)

    def test_exact_t_max_zero(self):
        ex = bips_exact(path_graph(3), 0, t_max=0)
        assert ex.survival().tolist() == [1.0]

    def test_cover_samples_zero_runs(self):
        samples = cover_time_samples(path_graph(3), runs=0, rng=1)
        assert samples.shape == (0,)
