"""Property-based tests on the process engines (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BipsProcess, CobraProcess, candidate_set, fixed_set
from repro.core.duality import verify_duality_exact
from repro.graphs import Graph


@st.composite
def connected_graphs(draw, min_n: int = 2, max_n: int = 8):
    """Random connected graphs: a random spanning tree plus extra edges."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    # Random spanning tree via random parent attachment.
    edges = set()
    for v in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        edges.add((parent, v))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    extra = draw(st.lists(st.sampled_from(possible), max_size=10))
    edges.update(extra)
    return Graph(n, sorted(edges))


@given(connected_graphs(), st.integers(min_value=0, max_value=1_000_000))
@settings(max_examples=60, deadline=None)
def test_cobra_step_stays_in_neighborhood(g, seed):
    rng = np.random.default_rng(seed)
    proc = CobraProcess(g)
    active = np.array([seed % g.n], dtype=np.int64)
    for _ in range(4):
        nxt = proc.step(active, rng)
        assert nxt.size >= 1
        for v in nxt.tolist():
            assert any(g.has_edge(u, v) for u in active.tolist())
        active = nxt


@given(connected_graphs(), st.integers(min_value=0, max_value=1_000_000))
@settings(max_examples=50, deadline=None)
def test_cobra_covers_and_hits_consistent(g, seed):
    rng = np.random.default_rng(seed)
    res = CobraProcess(g).run(seed % g.n, rng)
    assert res.covered
    assert int(res.hit_times.max()) == res.cover_time
    assert res.hit_times[seed % g.n] == 0


@given(connected_graphs(), st.integers(min_value=0, max_value=1_000_000))
@settings(max_examples=50, deadline=None)
def test_bips_source_persistence_and_completion(g, seed):
    rng = np.random.default_rng(seed)
    source = seed % g.n
    res = BipsProcess(g, source).run(rng)
    assert res.infected_all
    assert res.sizes[0] == 1
    assert np.all(res.sizes >= 1)  # the source is always infected


@given(connected_graphs(), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=60, deadline=None)
def test_fixed_and_candidate_partition(g, seed):
    """B_fix and C are disjoint; C subset of N(A) u {v}; C nonempty pre-completion."""
    rng = np.random.default_rng(seed)
    source = seed % g.n
    infected = np.zeros(g.n, dtype=bool)
    infected[source] = True
    proc = BipsProcess(g, source)
    for _ in range(3):
        if infected.all():
            break
        bfix = fixed_set(g, infected)
        cand = candidate_set(g, infected, source)
        assert not np.any(bfix & cand)
        assert cand.sum() >= 1
        # Candidates lie in N(A) u {v}.
        in_nbhd = np.zeros(g.n, dtype=bool)
        for u in np.nonzero(infected)[0]:
            in_nbhd[g.neighbors(u)] = True
        in_nbhd[source] = True
        assert np.all(~cand | in_nbhd)
        infected = proc.step(infected, rng)


@given(connected_graphs(max_n=6), st.data())
@settings(max_examples=25, deadline=None)
def test_duality_identity_random_graphs(g, data):
    """Theorem 1.3 holds exactly on random tiny graphs with random (v, C)."""
    source = data.draw(st.integers(min_value=0, max_value=g.n - 1))
    start = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=g.n - 1),
            min_size=1,
            max_size=g.n,
            unique=True,
        )
    )
    report = verify_duality_exact(g, source, start, t_max=8)
    assert report.max_abs_diff < 1e-9
