"""Trajectory-ensemble tests."""

import numpy as np
import pytest

from repro.core import (
    TrajectoryEnsemble,
    bips_size_ensemble,
    cobra_coverage_ensemble,
)
from repro.graphs import complete_graph, cycle_graph, petersen_graph


class TestAlignment:
    def test_padding_with_terminal_value(self):
        ens = bips_size_ensemble(cycle_graph(9), runs=20, seed=1)
        # All runs end fully infected: final column all n.
        assert np.all(ens.series[:, -1] == 9)
        assert np.all(ens.series[:, 0] == 1)

    def test_shapes(self):
        ens = cobra_coverage_ensemble(petersen_graph(), runs=12, seed=2)
        assert ens.runs == 12
        assert ens.series.shape == (12, ens.horizon + 1)


class TestSummaries:
    @pytest.fixture(scope="class")
    def ensemble(self):
        return bips_size_ensemble(complete_graph(16), runs=40, seed=3)

    def test_mean_monotone_for_monotone_terminal(self, ensemble):
        # Means start at 1 and end at n.
        mean = ensemble.mean()
        assert mean[0] == 1.0
        assert mean[-1] == 16.0

    def test_band_order(self, ensemble):
        lo, hi = ensemble.band()
        assert np.all(lo <= hi + 1e-12)
        med = ensemble.quantile(0.5)
        assert np.all(lo <= med + 1e-12) and np.all(med <= hi + 1e-12)

    def test_first_round_reaching(self, ensemble):
        firsts = ensemble.first_round_reaching(16)
        assert np.all(firsts >= 1)
        never = ensemble.first_round_reaching(17)
        assert np.all(never == -1)

    def test_rows(self, ensemble):
        rows = ensemble.to_rows(stride=2)
        assert rows[0]["round"] == 0
        assert all(r["q05"] <= r["mean"] + 1e-9 for r in rows)
        assert all(r["mean"] <= r["q95"] + 1e-9 for r in rows)


class TestDeterminism:
    def test_same_seed_same_series(self):
        a = bips_size_ensemble(cycle_graph(9), runs=8, seed=4)
        b = bips_size_ensemble(cycle_graph(9), runs=8, seed=4)
        assert np.array_equal(a.series, b.series)

    def test_coverage_reaches_n(self):
        ens = cobra_coverage_ensemble(cycle_graph(11), runs=10, seed=5)
        assert np.all(ens.series[:, -1] == 11)
        # Coverage is non-decreasing per run.
        assert np.all(np.diff(ens.series, axis=1) >= -1e-12)
