"""Exact subset-chain engine tests."""

import numpy as np
import pytest

from repro.core import (
    BipsProcess,
    CobraProcess,
    bips_exact,
    cobra_cover_survival_exact,
    cobra_hit_survival_exact,
    cover_time_samples,
    expected_time_from_survival,
    infection_time_samples,
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    path_graph,
    star_graph,
)
from repro.stats import empirical_survival


class TestBipsExact:
    def test_distributions_normalised(self):
        ex = bips_exact(path_graph(5), 0, t_max=12)
        assert np.allclose(ex.dists.sum(axis=1), 1.0)

    def test_survival_monotone_to_zero(self):
        ex = bips_exact(complete_graph(5), 0, t_max=40)
        surv = ex.survival()
        assert surv[0] == pytest.approx(1.0)
        assert np.all(np.diff(surv) <= 1e-12)
        assert surv[-1] < 1e-6

    def test_source_always_infected(self):
        ex = bips_exact(path_graph(4), 1, t_max=5)
        # P(source not in A_t) must be 0 at every t.
        assert ex.prob_uninfected([1], 3) == 0.0

    def test_prob_uninfected_decreases(self):
        ex = bips_exact(cycle_graph(6), 0, lazy=True, t_max=20)
        probs = [ex.prob_uninfected([3], t) for t in range(20)]
        assert probs[0] == pytest.approx(1.0)
        assert probs[-1] < 0.1

    def test_expected_size_monotone_to_n(self):
        g = complete_graph(6)
        ex = bips_exact(g, 0, t_max=30)
        sizes = [ex.expected_size(t) for t in range(31)]
        assert sizes[0] == pytest.approx(1.0)
        assert sizes[-1] == pytest.approx(6.0, abs=1e-6)
        assert all(b >= a - 1e-9 for a, b in zip(sizes, sizes[1:]))

    def test_size_limit_enforced(self):
        with pytest.raises(ValueError, match="exact BIPS limited"):
            bips_exact(hypercube_graph(4), 0)

    def test_matches_monte_carlo(self):
        # Exact mean infection time vs sampled mean on a tiny graph.
        g = path_graph(5)
        ex = bips_exact(g, 0, t_max=200)
        exact_mean = expected_time_from_survival(ex.survival())
        samples = infection_time_samples(g, 0, runs=800, rng=11)
        sem = samples.std(ddof=1) / np.sqrt(samples.shape[0])
        assert abs(samples.mean() - exact_mean) < 4.5 * sem

    def test_b1_probabilities(self):
        # With b = 1 and A = {source}, a neighbour of the source is
        # infected next round with probability exactly 1/d(u).
        g = star_graph(4)  # centre 0, leaves 1..3
        ex = bips_exact(g, 1, branching=1, t_max=1)
        # After one round: the hub (vertex 0) picked the source leaf
        # w.p. 1/3; leaves other than the source pick the hub (only
        # neighbour) which is uninfected at t=0 -> stay uninfected.
        p_hub_infected = 1.0 - ex.prob_uninfected([0], 1)
        assert p_hub_infected == pytest.approx(1 / 3)


class TestCobraHitExact:
    def test_survival_starts_at_one(self):
        surv = cobra_hit_survival_exact(path_graph(5), 0, 4, t_max=30)
        assert surv[0] == pytest.approx(1.0)
        assert np.all(np.diff(surv) <= 1e-12)

    def test_start_containing_target_is_zero(self):
        surv = cobra_hit_survival_exact(path_graph(5), [2, 3], 3, t_max=5)
        assert np.allclose(surv, 0.0)

    def test_one_step_hand_computation(self):
        # Path 0-1-2, start {1}, target 0, b=2: vertex 1 makes two
        # uniform picks from {0, 2}; P(miss 0) = (1/2)^2 = 1/4.
        surv = cobra_hit_survival_exact(path_graph(3), 1, 0, t_max=1)
        assert surv[1] == pytest.approx(0.25)

    def test_b1_matches_random_walk_matrix_power(self):
        # b = 1 COBRA is a simple random walk: survival of hitting v
        # equals the substochastic matrix power mass.
        from repro.graphs import transition_matrix

        g = cycle_graph(6)
        target = 3
        p = transition_matrix(g)
        keep = [u for u in range(6) if u != target]
        q = p[np.ix_(keep, keep)]
        dist = np.zeros(len(keep))
        dist[keep.index(0)] = 1.0
        expected = [1.0]
        for _ in range(12):
            dist = dist @ q
            expected.append(dist.sum())
        surv = cobra_hit_survival_exact(g, 0, target, branching=1, t_max=12)
        assert np.allclose(surv, expected, atol=1e-12)

    def test_matches_monte_carlo(self):
        g = cycle_graph(6)
        surv = cobra_hit_survival_exact(g, 0, 3, t_max=16)
        # Sample hit times empirically.
        proc = CobraProcess(g)
        rng = np.random.default_rng(21)
        hits = []
        for _ in range(1500):
            active = np.array([0])
            t = 0
            while not np.any(active == 3) and t < 16:
                active = proc.step(active, rng)
                t += 1
            hits.append(t if np.any(active == 3) else -1)
        emp = empirical_survival(np.array(hits), horizon=15)
        for t in range(16):
            se = max(np.sqrt(surv[t] * (1 - surv[t]) / 1500), 1e-3)
            assert abs(emp.at(t) - surv[t]) < 5 * se

    def test_size_limit(self):
        with pytest.raises(ValueError, match="exact COBRA limited"):
            cobra_hit_survival_exact(cycle_graph(12), 0, 5)


class TestCobraCoverExact:
    def test_survival_properties(self):
        surv = cobra_cover_survival_exact(path_graph(4), 0, t_max=60)
        assert surv[0] == pytest.approx(1.0)
        assert np.all(np.diff(surv) <= 1e-12)
        assert surv[-1] < 1e-6

    def test_mean_matches_monte_carlo(self):
        g = star_graph(5)
        surv = cobra_cover_survival_exact(g, 0, t_max=300)
        exact_mean = expected_time_from_survival(surv)
        samples = cover_time_samples(g, 0, runs=800, rng=17)
        sem = samples.std(ddof=1) / np.sqrt(samples.shape[0])
        assert abs(samples.mean() - exact_mean) < 4.5 * sem

    def test_size_limit(self):
        with pytest.raises(ValueError, match="cover limited"):
            cobra_cover_survival_exact(cycle_graph(10), 0)


class TestExpectedTimeFromSurvival:
    def test_geometric_example(self):
        # T geometric on {1, 2, ..}: P(T > t) = q^t; E T = 1/(1-q).
        q = 0.5
        surv = q ** np.arange(60)
        assert expected_time_from_survival(surv) == pytest.approx(2.0, abs=1e-9)

    def test_tail_guard(self):
        with pytest.raises(ValueError, match="tail"):
            expected_time_from_survival(np.array([1.0, 0.5, 0.2]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            expected_time_from_survival(np.array([]))


class TestExactCoverConvenience:
    def test_cover_expectation_matches_sampling(self):
        from repro.core import exact_cover_expectation

        g = path_graph(4)
        exact = exact_cover_expectation(g, 0)
        samples = cover_time_samples(g, 0, runs=1000, rng=29)
        sem = samples.std(ddof=1) / np.sqrt(samples.shape[0])
        assert abs(samples.mean() - exact) < 4.5 * sem

    def test_cover_of_graph_worst_is_path_end(self):
        from repro.core import exact_cover_expectation, exact_cover_of_graph

        g = path_graph(5)
        worst, value = exact_cover_of_graph(g)
        # On a path the endpoints are the worst starts.
        assert worst in (0, 4)
        assert value == pytest.approx(exact_cover_expectation(g, worst))
        assert value > exact_cover_expectation(g, 2)

    def test_symmetric_graph_start_invariant(self):
        from repro.core import exact_cover_expectation

        g = cycle_graph(5)
        a = exact_cover_expectation(g, 0)
        b = exact_cover_expectation(g, 3)
        assert a == pytest.approx(b, abs=1e-9)
