"""Absorption-rate and mixing-time tests."""

import numpy as np
import pytest

from repro.core import bips_absorption_rate, bips_exact
from repro.graphs import (
    complete_graph,
    cycle_graph,
    mixing_time_bound,
    path_graph,
    petersen_graph,
    star_graph,
)


class TestAbsorptionRate:
    def test_matches_exact_tail_ratio(self):
        # P(infec > t) ~ gamma^t: consecutive survival ratios converge
        # to the spectral radius of the transient block.  The ratio
        # window must sit where survival is small but far above float
        # underflow.
        for g, source in ((path_graph(5), 0), (cycle_graph(5), 0), (star_graph(5), 2)):
            gamma = bips_absorption_rate(g, source)
            surv = bips_exact(g, source, t_max=120).survival()
            usable = np.nonzero(surv > 1e-10)[0]
            hi = int(usable[-1])
            lo = max(hi - 15, 5)
            tail = surv[lo + 1 : hi + 1] / surv[lo:hi]
            assert np.allclose(tail.mean(), gamma, atol=0.02), g.name

    def test_deterministic_completion_has_rate_zero(self):
        # Star with the hub as source: every leaf's only neighbour is
        # the (always infected) hub, so infection completes in exactly
        # one round and the transient block is nilpotent.
        assert bips_absorption_rate(star_graph(5), 0) == pytest.approx(0.0)

    def test_rate_in_unit_interval(self):
        gamma = bips_absorption_rate(complete_graph(6), 0)
        assert 0.0 < gamma < 1.0

    def test_faster_policy_smaller_rate(self):
        g = cycle_graph(7)
        g2 = bips_absorption_rate(g, 0, branching=2)
        g1 = bips_absorption_rate(g, 0, branching=1)
        assert g2 < g1  # b=2 drains the tail faster

    def test_single_vertex(self):
        from repro.graphs import Graph

        assert bips_absorption_rate(Graph(1, []), 0) == 0.0

    def test_size_limit(self):
        with pytest.raises(ValueError, match="limited"):
            bips_absorption_rate(cycle_graph(12), 0)

    def test_expected_time_scale_consistent(self):
        # E[infec] >= tail-rate heuristic 1/(1 - gamma) is not exact,
        # but the two must be on the same scale for a tiny graph.
        g = path_graph(5)
        gamma = bips_absorption_rate(g, 0)
        surv = bips_exact(g, 0, t_max=300).survival()
        mean = float(surv.sum())
        assert 0.2 / (1 - gamma) < mean < 10 / (1 - gamma)


class TestMixingTimeBound:
    def test_formula(self):
        g = petersen_graph()
        # gap = 1/3 -> ln(10/0.25) * 3.
        assert mixing_time_bound(g) == pytest.approx(np.log(40) * 3, rel=1e-9)

    def test_epsilon_validated(self):
        with pytest.raises(ValueError):
            mixing_time_bound(petersen_graph(), epsilon=0.0)

    def test_bipartite_requires_lazy(self):
        g = cycle_graph(8)
        with pytest.raises(ValueError, match="lazy"):
            mixing_time_bound(g)
        assert mixing_time_bound(g, lazy=True) > 0

    def test_expander_mixes_fast(self):
        from repro.graphs import random_regular_graph

        fast = mixing_time_bound(random_regular_graph(128, 8, rng=1))
        slow = mixing_time_bound(cycle_graph(129))
        assert fast * 10 < slow
