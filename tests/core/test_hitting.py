"""Hitting-time utilities: exact linear-system values and MC agreement."""

import numpy as np
import pytest

from repro.core import (
    cobra_hit_survival_mc,
    cobra_hit_survival_exact,
    commute_time,
    random_walk_hitting_time,
    random_walk_hitting_times,
)
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    star_graph,
)


class TestExactHittingTimes:
    def test_complete_graph_closed_form(self):
        # K_n: H(u, v) = n - 1 for u != v.
        n = 8
        assert random_walk_hitting_time(complete_graph(n), 0, 5) == pytest.approx(
            n - 1
        )

    def test_path_endpoint_closed_form(self):
        # P_n (vertices 0..n-1): H(0, n-1) = (n-1)^2.
        n = 6
        assert random_walk_hitting_time(path_graph(n), 0, n - 1) == pytest.approx(
            (n - 1) ** 2
        )

    def test_cycle_closed_form(self):
        # C_n: H(u, v) = k (n - k) for distance k.
        g = cycle_graph(10)
        assert random_walk_hitting_time(g, 0, 3) == pytest.approx(3 * 7)
        assert random_walk_hitting_time(g, 0, 5) == pytest.approx(5 * 5)

    def test_star_hub_and_leaf(self):
        # Star with hub 0: H(leaf, hub) = 1; H(hub, leaf) = 2(n-1) - 1.
        g = star_graph(9)
        assert random_walk_hitting_time(g, 3, 0) == pytest.approx(1.0)
        assert random_walk_hitting_time(g, 0, 3) == pytest.approx(2 * 8 - 1)

    def test_target_zero(self):
        times = random_walk_hitting_times(petersen_graph(), 4)
        assert times[4] == 0.0
        assert np.all(times[np.arange(10) != 4] > 0)

    def test_commute_symmetric(self):
        g = petersen_graph()
        assert commute_time(g, 0, 7) == pytest.approx(commute_time(g, 7, 0))

    def test_commute_via_effective_resistance(self):
        # Edge of a cycle: R_eff = (1 * (n-1))/n; commute = 2m R_eff.
        n = 9
        g = cycle_graph(n)
        assert commute_time(g, 0, 1) == pytest.approx(2 * n * (n - 1) / n)

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            random_walk_hitting_times(Graph(4, [(0, 1)]), 0)


class TestMcSurvival:
    def test_matches_exact_b2(self):
        g = cycle_graph(6)
        exact = cobra_hit_survival_exact(g, 0, 3, t_max=12)
        curve = cobra_hit_survival_mc(g, 0, 3, runs=2500, horizon=12, rng=3)
        for t in range(13):
            se = max(np.sqrt(exact[t] * (1 - exact[t]) / 2500), 1.5e-3)
            assert abs(curve.at(t) - exact[t]) < 5 * se, f"t={t}"

    def test_b1_mean_matches_linear_system(self):
        # Survival-sum estimate of E[Hit] vs the exact linear solve.
        g = path_graph(5)
        exact = random_walk_hitting_time(g, 0, 4)  # = 16
        curve = cobra_hit_survival_mc(
            g, 0, 4, branching=1, runs=3000, horizon=250, rng=4
        )
        mc_mean = float(curve.probabilities.sum())
        assert mc_mean == pytest.approx(exact, rel=0.08)

    def test_start_set_containing_target(self):
        curve = cobra_hit_survival_mc(
            path_graph(4), [1, 2], 2, runs=50, horizon=5, rng=1
        )
        assert curve.at(0) == 0.0
