"""Branching policy tests."""

import numpy as np
import pytest

from repro.core import BernoulliBranching, FixedBranching, make_policy


class TestFixedBranching:
    def test_counts_constant(self, rng):
        pol = FixedBranching(3)
        counts = pol.draw_counts(10, rng)
        assert counts.tolist() == [3] * 10

    def test_expected_and_max(self):
        pol = FixedBranching(2)
        assert pol.expected_branching == 2.0
        assert pol.max_branching == 2

    def test_second_selection_probability(self):
        assert FixedBranching(1).second_selection_probability() == 0.0
        assert FixedBranching(2).second_selection_probability() == 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            FixedBranching(0)


class TestBernoulliBranching:
    def test_counts_in_range(self, rng):
        pol = BernoulliBranching(0.5)
        counts = pol.draw_counts(1000, rng)
        assert set(counts.tolist()) <= {1, 2}

    def test_mean_matches_rho(self, rng):
        pol = BernoulliBranching(0.3)
        counts = pol.draw_counts(20000, rng)
        assert counts.mean() == pytest.approx(1.3, abs=0.02)
        assert pol.expected_branching == pytest.approx(1.3)

    def test_invalid_rho(self):
        with pytest.raises(ValueError):
            BernoulliBranching(0.0)
        with pytest.raises(ValueError):
            BernoulliBranching(1.5)


class TestMakePolicy:
    def test_int_coercion(self):
        assert make_policy(2) == FixedBranching(2)
        assert make_policy(np.int64(4)) == FixedBranching(4)

    def test_float_coercion(self):
        assert make_policy(1.5) == BernoulliBranching(0.5)
        assert make_policy(2.0) == FixedBranching(2)

    def test_policy_passthrough(self):
        pol = BernoulliBranching(0.25)
        assert make_policy(pol) is pol

    def test_invalid(self):
        with pytest.raises(ValueError):
            make_policy(2.5)
        with pytest.raises(TypeError):
            make_policy("two")
