"""Duality theorem (Theorem 1.3) verification tests — the headline
correctness property of this reproduction."""

import numpy as np
import pytest

from repro.core import (
    BernoulliBranching,
    verify_duality_exact,
    verify_duality_monte_carlo,
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    random_regular_graph,
    star_graph,
)


class TestExactDuality:
    @pytest.mark.parametrize(
        "graph,source,start",
        [
            (path_graph(5), 4, [0]),
            (path_graph(5), 0, [2, 4]),
            (cycle_graph(6), 3, [0]),
            (star_graph(6), 0, [3]),
            (star_graph(6), 2, [0, 5]),
            (complete_graph(5), 1, [0]),
        ],
    )
    def test_identity_b2(self, graph, source, start):
        report = verify_duality_exact(graph, source, start, t_max=16)
        assert report.max_abs_diff < 1e-10
        assert report.consistent()

    @pytest.mark.parametrize("branching", [1, 2, 3, BernoulliBranching(0.3)])
    def test_identity_all_branchings(self, branching):
        report = verify_duality_exact(
            cycle_graph(5), 2, [0], branching=branching, t_max=14
        )
        assert report.max_abs_diff < 1e-10

    def test_identity_lazy(self):
        report = verify_duality_exact(
            cycle_graph(6), 0, [3], lazy=True, t_max=14
        )
        assert report.max_abs_diff < 1e-10

    def test_identity_random_graphs(self):
        for seed in range(4):
            g = erdos_renyi_graph(6, 0.6, rng=seed)
            report = verify_duality_exact(g, 0, [g.n - 1], t_max=12)
            assert report.max_abs_diff < 1e-10, f"seed {seed}"

    def test_source_in_start_set(self):
        # Hit at round 0: LHS is identically 0; BIPS side must agree
        # because the source is always infected.
        report = verify_duality_exact(path_graph(4), 1, [1, 3], t_max=6)
        assert np.allclose(report.cobra_side, 0.0)
        assert report.max_abs_diff < 1e-12

    def test_horizon_zero_value(self):
        # At T = 0: LHS = 1 iff v not in C; RHS = 1 iff C misses {v}.
        report = verify_duality_exact(path_graph(4), 3, [0], t_max=3)
        assert report.cobra_side[0] == pytest.approx(1.0)
        assert report.bips_side[0] == pytest.approx(1.0)


class TestMonteCarloDuality:
    def test_consistency_on_expander(self):
        g = random_regular_graph(24, 3, rng=2)
        report = verify_duality_monte_carlo(
            g, source=0, start_set=[g.n - 1], runs=1500, rng=8
        )
        assert report.consistent(z=4.5)

    def test_against_exact_ground_truth(self):
        # MC estimates on a tiny graph must bracket the exact values.
        g = cycle_graph(6)
        exact = verify_duality_exact(g, 0, [3], t_max=10)
        mc = verify_duality_monte_carlo(
            g, 0, [3], horizons=np.arange(11), runs=3000, rng=5
        )
        for i in range(11):
            tol = 4.5 * max(mc.cobra_stderr[i], 1e-3)
            assert abs(mc.cobra_side[i] - exact.cobra_side[i]) < tol
            tol = 4.5 * max(mc.bips_stderr[i], 1e-3)
            assert abs(mc.bips_side[i] - exact.bips_side[i]) < tol

    def test_report_fields(self):
        g = cycle_graph(5)
        mc = verify_duality_monte_carlo(
            g, 0, [2], horizons=[0, 2, 4], runs=200, rng=1
        )
        assert mc.horizons.tolist() == [0, 2, 4]
        assert mc.cobra_side.shape == (3,)
        assert mc.max_abs_diff >= 0.0
