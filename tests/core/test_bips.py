"""BIPS engine tests: step semantics, candidate sets, batch consistency."""

import numpy as np
import pytest

from repro.core import (
    BipsProcess,
    candidate_set,
    fixed_set,
    infection_time,
    infection_time_samples,
)
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    star_graph,
)


def _mask(n, members):
    m = np.zeros(n, dtype=bool)
    m[list(members)] = True
    return m


class TestFixedAndCandidateSets:
    def test_fixed_set_definition(self, path5):
        # A = {0, 1, 2}: N(0) = {1} and N(1) = {0, 2} lie inside A, so
        # B_fix = {0, 1}; N(2) = {1, 3} does not.
        infected = _mask(5, [0, 1, 2])
        bfix = fixed_set(path5, infected)
        assert bfix.tolist() == [True, True, False, False, False]

    def test_fixed_set_all_infected(self, k5):
        infected = _mask(5, range(5))
        assert fixed_set(k5, infected).all()

    def test_candidate_set_definition(self, path5):
        # A = {0, 1, 2}, source 0.  N(A) = {0, 1, 2, 3}; B_fix = {0, 1};
        # C = (N(A) u {0}) \ B_fix = {2, 3}.
        infected = _mask(5, [0, 1, 2])
        c = candidate_set(path5, infected, source=0)
        assert c.tolist() == [False, False, True, True, False]

    def test_candidate_set_never_empty_before_completion(self, rng):
        # Paper (Section 3): C_t is never empty while A != V.
        for g in (path_graph(6), star_graph(6), cycle_graph(7), petersen_graph()):
            proc = BipsProcess(g, 0)
            infected = _mask(g.n, [0])
            for _ in range(60):
                if infected.all():
                    break
                assert candidate_set(g, infected, 0).sum() >= 1
                infected = proc.step(infected, rng)

    def test_candidate_includes_source_when_not_fixed(self, path5):
        infected = _mask(5, [0])
        c = candidate_set(path5, infected, source=0)
        assert c[0]  # N(0) = {1} not within A, so source is a candidate

    def test_source_in_bfix_case(self):
        # Star with source = centre and all its neighbours infected:
        # the source's whole neighbourhood is in A so source is in B_fix.
        g = star_graph(4)
        infected = _mask(4, [0, 1, 2, 3])
        bfix = fixed_set(g, infected)
        assert bfix[0]


class TestStepSemantics:
    def test_source_always_infected(self, petersen, rng):
        proc = BipsProcess(petersen, source=4)
        infected = _mask(10, [4])
        for _ in range(20):
            infected = proc.step(infected, rng)
            assert infected[4]

    def test_infection_only_from_neighbors(self, rng):
        # With only the source infected, one round can infect only its
        # neighbours (plus the source itself).
        g = star_graph(8)
        proc = BipsProcess(g, source=1)  # a leaf
        infected = _mask(8, [1])
        nxt = proc.step(infected, rng)
        allowed = {1, 0}  # source + its unique neighbour (the hub)
        assert set(np.nonzero(nxt)[0].tolist()) <= allowed

    def test_b2_vertex_with_infected_neighbors_gets_infected_often(self, rng):
        # Complete graph, all-but-one infected: the remaining vertex has
        # p = 1 - (1/(n-1))^2 chance... with all neighbours infected it
        # is deterministic.
        g = complete_graph(6)
        proc = BipsProcess(g, 0)
        infected = _mask(6, range(5))
        count = 0
        for _ in range(30):
            nxt = proc.step(infected, rng)
            count += int(nxt[5])
        assert count == 30  # every neighbour infected => always infected

    def test_sis_vertices_can_lose_infection(self, rng):
        # On a path, an infected non-source vertex with no infected
        # neighbours must drop out.
        g = path_graph(5)
        proc = BipsProcess(g, source=0)
        infected = _mask(5, [0, 4])
        nxt = proc.step(infected, rng)
        assert not nxt[4]  # neighbour 3 was not infected

    def test_mask_shape_validated(self, petersen, rng):
        with pytest.raises(ValueError):
            BipsProcess(petersen, 0).step(np.zeros(5, dtype=bool), rng)


class TestRun:
    def test_infects_everything(self, rng):
        res = BipsProcess(complete_graph(10), 0).run(rng)
        assert res.infected_all
        assert res.infection_time >= 1
        assert res.sizes[0] == 1
        assert res.sizes[-1] == 10

    def test_recorded_degrees(self, rng):
        g = star_graph(8)
        res = BipsProcess(g, 0).run(rng, record_degrees=True)
        assert res.degree_sizes.shape[0] == res.rounds_run + 1
        assert res.degree_sizes[0] == g.degree(0)
        assert res.degree_sizes[-1] == g.total_degree()

    def test_recorded_candidates(self, rng):
        res = BipsProcess(cycle_graph(9), 0).run(rng, record_candidates=True)
        assert res.candidate_sizes.shape[0] == res.rounds_run
        assert np.all(res.candidate_sizes >= 1)

    def test_initial_override(self, rng):
        g = path_graph(6)
        initial = _mask(6, [0, 1, 2, 3, 4, 5])
        res = BipsProcess(g, 0).run(rng, initial=initial)
        assert res.infection_time == 0

    def test_initial_must_contain_source(self, rng):
        g = path_graph(4)
        with pytest.raises(ValueError, match="source"):
            BipsProcess(g, 0).run(rng, initial=_mask(4, [1]))

    def test_cap(self, rng):
        res = BipsProcess(cycle_graph(64), 0).run(rng, max_rounds=2)
        assert not res.infected_all
        assert res.infection_time == -1


class TestBatch:
    def test_batch_times_positive(self, rng):
        res = BipsProcess(complete_graph(8), 0).run_batch(16, rng)
        assert res.all_infected
        assert np.all(res.infection_times >= 1)

    def test_batch_sizes_recorded(self, rng):
        res = BipsProcess(cycle_graph(9), 0).run_batch(6, rng, record_sizes=True)
        assert res.sizes is not None
        assert res.sizes.shape[0] == 6
        assert np.all(res.sizes[:, 0] == 1)

    def test_batch_matches_single_distribution(self):
        g = cycle_graph(11)
        single = np.array(
            [
                BipsProcess(g, 0).run(np.random.default_rng(500 + i)).infection_time
                for i in range(150)
            ]
        )
        batch = infection_time_samples(g, 0, 150, rng=9)
        se = np.sqrt(single.var(ddof=1) / 150 + batch.var(ddof=1) / 150)
        assert abs(single.mean() - batch.mean()) < 4 * se

    def test_batch_run_count_validated(self, rng):
        with pytest.raises(ValueError):
            BipsProcess(path_graph(4), 0).run_batch(0, rng)


class TestConvenience:
    def test_infection_time_deterministic_seed(self):
        a = infection_time(petersen_graph(), 0, rng=3)
        b = infection_time(petersen_graph(), 0, rng=3)
        assert a == b

    def test_infection_time_cap_raises(self):
        with pytest.raises(RuntimeError, match="did not infect"):
            infection_time(cycle_graph(64), 0, rng=1, max_rounds=2)

    def test_samples_batched(self):
        s = infection_time_samples(complete_graph(8), runs=25, rng=4, batch_size=10)
        assert s.shape == (25,)


class TestBranchingVariants:
    def test_b1_is_slower_than_b2(self):
        g = cycle_graph(15)
        t1 = infection_time_samples(g, runs=40, branching=1, rng=1).mean()
        t2 = infection_time_samples(g, runs=40, branching=2, rng=2).mean()
        assert t2 < t1

    def test_bernoulli_between(self):
        g = cycle_graph(15)
        t_half = infection_time_samples(g, runs=60, branching=1.5, rng=3).mean()
        t2 = infection_time_samples(g, runs=60, branching=2, rng=4).mean()
        t1 = infection_time_samples(g, runs=60, branching=1, rng=5).mean()
        assert t2 < t_half < t1

    def test_lazy_works_on_bipartite(self, rng):
        res = BipsProcess(cycle_graph(8), 0, lazy=True).run(rng)
        assert res.infected_all
