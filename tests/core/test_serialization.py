"""Serialised-BIPS (Section 3 machinery) tests."""

import numpy as np
import pytest

from repro.core import BipsProcess, SerializedBips, collect_increments
from repro.graphs import cycle_graph, path_graph, petersen_graph, star_graph


class TestRoundMechanics:
    def test_identity_eq12_every_round(self, rng):
        # d(B) = d(A) + sum(Y_l) must hold exactly, per eq. (12).
        for g in (path_graph(8), star_graph(8), petersen_graph()):
            proc = SerializedBips(g, 0)
            for record in proc.run(rng):
                assert record.check_identity()

    def test_steps_are_candidates_only(self, rng):
        g = petersen_graph()
        proc = SerializedBips(g, 0)
        rec = proc.run_round(rng)
        # Step count equals the candidate-set size announced.
        assert rec.candidate_count == len(rec.steps)
        assert rec.candidate_count >= 1  # C_t never empty (paper)

    def test_conditional_mean_lower_bound(self, rng):
        # Eq. (18): E[Y_l | history] >= 1/2 for b = 2 (>= 1 for the
        # source by the explicit argument).
        g = petersen_graph()
        proc = SerializedBips(g, 0)
        for record in proc.run(rng):
            for s in record.steps:
                assert s.conditional_mean >= 0.5 - 1e-12

    def test_conditional_mean_rho_bound(self, rng):
        # Section 6: >= rho/2 for branching 1 + rho.
        rho = 0.4
        proc = SerializedBips(petersen_graph(), 0, branching=1 + rho)
        for record in proc.run(rng):
            for s in record.steps:
                assert s.conditional_mean >= rho / 2 - 1e-12

    def test_z_bounded_by_one(self, rng):
        # |Y_l| <= dmax so |Z_l| = |1/2 - Y_l|/dmax <= 1 (for dmax >= 1;
        # the paper's normalisation).
        g = star_graph(12)
        proc = SerializedBips(g, 0)
        records = proc.run(rng)
        _, zs, _ = collect_increments(records)
        assert np.all(np.abs(zs) <= 1.0 + 1e-12)

    def test_y_values_possible(self, rng):
        # Y_l in {-d_A(u), d(u) - d_A(u)} for non-source candidates.
        proc = SerializedBips(petersen_graph(), 0)
        for record in proc.run(rng):
            for s in record.steps:
                if s.vertex != 0:
                    assert s.y in (
                        -float(s.infected_neighbors),
                        float(s.degree - s.infected_neighbors),
                    )

    def test_source_step_rules(self, rng):
        # When the source is a candidate, X = 1 and Y = d(v) - d_A(v) >= 1.
        proc = SerializedBips(star_graph(6), 0)
        saw_source_step = False
        for record in proc.run(rng):
            for s in record.steps:
                if s.vertex == 0:
                    saw_source_step = True
                    assert s.x == 1
                    assert s.y >= 1
        assert saw_source_step

    def test_completion(self, rng):
        proc = SerializedBips(path_graph(6), 0)
        proc.run(rng)
        assert proc.complete
        with pytest.raises(RuntimeError, match="complete"):
            proc.run_round(rng)


class TestEquivalenceWithParallelBips:
    def test_mean_infection_time_matches(self):
        # The serialisation is an analysis artifact: same distribution
        # as the parallel engine.
        g = cycle_graph(9)
        serial = []
        for i in range(120):
            proc = SerializedBips(g, 0)
            serial.append(len(proc.run(np.random.default_rng(2000 + i))))
        parallel = []
        for i in range(120):
            res = BipsProcess(g, 0).run(np.random.default_rng(5000 + i))
            parallel.append(res.infection_time)
        serial_arr = np.array(serial, dtype=float)
        par_arr = np.array(parallel, dtype=float)
        se = np.sqrt(serial_arr.var(ddof=1) / 120 + par_arr.var(ddof=1) / 120)
        assert abs(serial_arr.mean() - par_arr.mean()) < 4 * se

    def test_custom_order_same_distribution(self):
        # The vertex ordering is arbitrary; reversing it must not change
        # the process law (spot-check the mean).
        g = path_graph(7)
        means = []
        for order in (None, np.arange(6, -1, -1)):
            times = []
            for i in range(100):
                proc = SerializedBips(g, 0, order=order)
                times.append(len(proc.run(np.random.default_rng(100 + i))))
            means.append(np.mean(times))
        assert abs(means[0] - means[1]) < 2.5

    def test_order_validated(self):
        with pytest.raises(ValueError, match="permutation"):
            SerializedBips(path_graph(4), 0, order=np.array([0, 1, 1, 3]))


class TestIncrements:
    def test_collect_shapes(self, rng):
        proc = SerializedBips(path_graph(6), 0)
        records = proc.run(rng)
        ys, zs, means = collect_increments(records)
        total_steps = sum(len(r.steps) for r in records)
        assert ys.shape == zs.shape == means.shape == (total_steps,)

    def test_z_transform(self, rng):
        g = star_graph(9)
        proc = SerializedBips(g, 0)
        records = proc.run(rng)
        ys, zs, _ = collect_increments(records)
        assert np.allclose(zs, (0.5 - ys) / g.dmax)
