"""Tests for the duality-proof coupling (time-reversed selection reuse)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BernoulliBranching,
    SelectionTable,
    bips_replay,
    cobra_replay,
    coupling_equivalence_holds,
)
from repro.graphs import Graph, cycle_graph, path_graph, star_graph


class TestSelectionTable:
    def test_sample_shape(self, petersen, rng):
        table = SelectionTable.sample(petersen, horizon=5, rng=rng)
        assert table.horizon == 5
        assert len(table.selections[0]) == petersen.n

    def test_selections_are_neighbors(self, petersen, rng):
        table = SelectionTable.sample(petersen, horizon=3, rng=rng)
        for t in range(3):
            for u in range(petersen.n):
                for w in table.selections[t][u]:
                    assert petersen.has_edge(u, w)

    def test_fixed_b_selection_counts(self, petersen, rng):
        table = SelectionTable.sample(petersen, horizon=2, rng=rng, branching=3)
        assert all(
            len(table.selections[t][u]) == 3
            for t in range(2)
            for u in range(petersen.n)
        )

    def test_bernoulli_counts(self, petersen, rng):
        table = SelectionTable.sample(
            petersen, horizon=4, rng=rng, branching=BernoulliBranching(0.5)
        )
        lengths = {
            len(table.selections[t][u])
            for t in range(4)
            for u in range(petersen.n)
        }
        assert lengths <= {1, 2}

    def test_lazy_selections_may_stay(self, rng):
        g = path_graph(3)
        table = SelectionTable.sample(g, horizon=30, rng=rng, lazy=True)
        stays = sum(
            w == u
            for t in range(30)
            for u in range(g.n)
            for w in table.selections[t][u]
        )
        assert stays > 5


class TestReplays:
    def test_cobra_replay_deterministic(self, petersen, rng):
        table = SelectionTable.sample(petersen, horizon=4, rng=rng)
        a = cobra_replay(table, [0])
        b = cobra_replay(table, [0])
        assert np.array_equal(a, b)

    def test_cobra_replay_start_visited(self, petersen, rng):
        table = SelectionTable.sample(petersen, horizon=1, rng=rng)
        visited = cobra_replay(table, [3, 7])
        assert visited[3] and visited[7]

    def test_bips_replay_source_infected(self, petersen, rng):
        table = SelectionTable.sample(petersen, horizon=6, rng=rng)
        infected = bips_replay(table, 2)
        assert infected[2]

    def test_star_one_round_by_hand(self, rng):
        # Star, start at the hub with horizon 1: COBRA visits exactly
        # the hub's selections.
        g = star_graph(6)
        table = SelectionTable.sample(g, horizon=1, rng=rng)
        visited = cobra_replay(table, [0])
        expected = {0} | set(table.selections[0][0])
        assert set(np.nonzero(visited)[0].tolist()) == expected


class TestEquivalence:
    @pytest.mark.parametrize("branching", [1, 2, 3, BernoulliBranching(0.4)])
    def test_equivalence_many_tables(self, branching):
        rng = np.random.default_rng(7)
        g = cycle_graph(7)
        for trial in range(100):
            table = SelectionTable.sample(
                g, horizon=1 + trial % 7, rng=rng, branching=branching
            )
            assert coupling_equivalence_holds(
                table, [trial % g.n], (trial * 5 + 1) % g.n
            )

    def test_equivalence_lazy(self):
        rng = np.random.default_rng(8)
        g = path_graph(6)
        for trial in range(60):
            table = SelectionTable.sample(g, horizon=4, rng=rng, lazy=True)
            assert coupling_equivalence_holds(table, [0], 5)


@st.composite
def coupled_cases(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    edges = set()
    for v in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        edges.add((parent, v))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges.update(draw(st.lists(st.sampled_from(possible), max_size=6)))
    g = Graph(n, sorted(edges))
    source = draw(st.integers(min_value=0, max_value=n - 1))
    start = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=1,
            max_size=n,
            unique=True,
        )
    )
    horizon = draw(st.integers(min_value=0, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    return g, source, start, horizon, seed


@given(coupled_cases())
@settings(max_examples=150, deadline=None)
def test_coupling_equivalence_property(case):
    """The proof's deterministic claim on random graphs/tables/(v, C, T)."""
    g, source, start, horizon, seed = case
    table = SelectionTable.sample(g, horizon, np.random.default_rng(seed))
    assert coupling_equivalence_holds(table, start, source)


@st.composite
def set_coupled_cases(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    edges = set()
    for v in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        edges.add((parent, v))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges.update(draw(st.lists(st.sampled_from(possible), max_size=6)))
    g = Graph(n, sorted(edges))
    vertex_sets = st.lists(
        st.integers(min_value=0, max_value=n - 1),
        min_size=1,
        max_size=n,
        unique=True,
    )
    start = draw(vertex_sets)
    targets = draw(vertex_sets)
    horizon = draw(st.integers(min_value=0, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    return g, start, targets, horizon, seed


@given(set_coupled_cases())
@settings(max_examples=120, deadline=None)
def test_set_generalised_duality_property(case):
    """The set-of-sources duality extension holds per table."""
    from repro.core import set_coupling_equivalence_holds

    g, start, targets, horizon, seed = case
    table = SelectionTable.sample(g, horizon, np.random.default_rng(seed))
    assert set_coupling_equivalence_holds(table, start, targets)


class TestSetDuality:
    def test_single_target_matches_original(self):
        from repro.core import set_coupling_equivalence_holds

        rng = np.random.default_rng(31)
        g = cycle_graph(6)
        for trial in range(50):
            table = SelectionTable.sample(g, horizon=3, rng=rng)
            # |S| = 1 reduces to Theorem 1.3's statement.
            assert set_coupling_equivalence_holds(table, [0], [trial % 6])
            assert coupling_equivalence_holds(table, [0], trial % 6)

    def test_multi_source_replay_marks_all_sources(self):
        from repro.core import bips_replay_multi

        rng = np.random.default_rng(32)
        g = path_graph(6)
        table = SelectionTable.sample(g, horizon=4, rng=rng)
        infected = bips_replay_multi(table, [0, 5])
        assert infected[0] and infected[5]
