"""Property-based tests for the exact subset-chain engines."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    bips_exact,
    cobra_hit_survival_exact,
    verify_duality_exact,
)
from repro.graphs import Graph


@st.composite
def tiny_connected_graphs(draw, min_n: int = 2, max_n: int = 6):
    """Random connected graphs small enough for the exact engines."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    edges = set()
    for v in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        edges.add((parent, v))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    extra = draw(st.lists(st.sampled_from(possible), max_size=8))
    edges.update(extra)
    return Graph(n, sorted(edges))


@given(tiny_connected_graphs(), st.data())
@settings(max_examples=40, deadline=None)
def test_bips_exact_is_a_distribution(g, data):
    source = data.draw(st.integers(min_value=0, max_value=g.n - 1))
    ex = bips_exact(g, source, t_max=8)
    assert np.allclose(ex.dists.sum(axis=1), 1.0, atol=1e-12)
    assert np.all(ex.dists >= -1e-15)


@given(tiny_connected_graphs(), st.data())
@settings(max_examples=40, deadline=None)
def test_bips_exact_survival_monotone(g, data):
    source = data.draw(st.integers(min_value=0, max_value=g.n - 1))
    surv = bips_exact(g, source, t_max=10).survival()
    assert surv[0] <= 1.0 + 1e-12
    assert np.all(np.diff(surv) <= 1e-12)


@given(tiny_connected_graphs(), st.data())
@settings(max_examples=40, deadline=None)
def test_bips_expected_size_bounds(g, data):
    source = data.draw(st.integers(min_value=0, max_value=g.n - 1))
    ex = bips_exact(g, source, t_max=8)
    for t in range(9):
        size = ex.expected_size(t)
        assert 1.0 - 1e-9 <= size <= g.n + 1e-9


@given(tiny_connected_graphs(), st.data())
@settings(max_examples=30, deadline=None)
def test_cobra_hit_survival_monotone_and_bounded(g, data):
    start = data.draw(st.integers(min_value=0, max_value=g.n - 1))
    target = data.draw(st.integers(min_value=0, max_value=g.n - 1))
    surv = cobra_hit_survival_exact(g, start, target, t_max=10)
    assert np.all(surv >= -1e-15)
    assert np.all(surv <= 1.0 + 1e-12)
    assert np.all(np.diff(surv) <= 1e-12)
    if start == target:
        assert np.allclose(surv, 0.0)


@given(
    tiny_connected_graphs(),
    st.data(),
    st.sampled_from([1, 2, 1.5]),
    st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_duality_holds_for_all_policies_and_laziness(g, data, branching, lazy):
    """Theorem 1.3 with random (v, C), random policy, lazy or not."""
    source = data.draw(st.integers(min_value=0, max_value=g.n - 1))
    start = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=g.n - 1),
            min_size=1,
            max_size=g.n,
            unique=True,
        )
    )
    report = verify_duality_exact(
        g, source, start, branching=branching, lazy=lazy, t_max=7
    )
    assert report.max_abs_diff < 1e-9
