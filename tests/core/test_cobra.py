"""COBRA engine tests: step semantics, cover times, batch consistency."""

import numpy as np
import pytest

from repro.core import CobraProcess, cover_time, cover_time_samples, hit_time_samples
from repro.core.cobra import default_round_cap
from repro.graphs import Graph, complete_graph, cycle_graph, path_graph, star_graph


class TestStepSemantics:
    def test_targets_are_neighbors(self, petersen, rng):
        proc = CobraProcess(petersen)
        active = np.array([0, 5])
        nxt = proc.step(active, rng)
        for v in nxt.tolist():
            assert any(petersen.has_edge(u, v) for u in active.tolist())

    def test_output_sorted_unique(self, k5, rng):
        proc = CobraProcess(k5)
        nxt = proc.step(np.arange(5), rng)
        assert np.all(np.diff(nxt) > 0)

    def test_coalescing_bounds_growth(self, k5, rng):
        # |C_{t+1}| <= b * |C_t| always (paper: doubling is the max).
        proc = CobraProcess(k5, branching=2)
        active = np.array([0])
        for _ in range(10):
            nxt = proc.step(active, rng)
            assert nxt.shape[0] <= 2 * active.shape[0]
            active = nxt

    def test_b1_single_walker(self, petersen, rng):
        proc = CobraProcess(petersen, branching=1)
        active = np.array([0])
        for _ in range(20):
            active = proc.step(active, rng)
            assert active.shape[0] == 1  # b=1 never branches

    def test_empty_active_rejected(self, petersen, rng):
        with pytest.raises(ValueError, match="nonempty"):
            CobraProcess(petersen).step(np.empty(0, dtype=np.int64), rng)

    def test_lazy_can_stay(self, rng):
        # On a path with lazy selection, a particle at an endpoint can
        # stay put; over many steps both outcomes occur.
        g = path_graph(2)
        proc = CobraProcess(g, branching=1, lazy=True)
        seen = set()
        active = np.array([0])
        for _ in range(40):
            nxt = proc.step(active, rng)
            seen.add(int(nxt[0]))
        assert seen == {0, 1}

    def test_disconnected_rejected(self):
        g = Graph(4, [(0, 1)])
        with pytest.raises(ValueError, match="connected"):
            CobraProcess(g)


class TestRun:
    def test_complete_graph_covers_fast(self, rng):
        res = CobraProcess(complete_graph(16)).run(0, rng)
        assert res.covered
        # log2(16) = 4 is the absolute floor; anything below ~30 is sane.
        assert 4 <= res.cover_time <= 30

    def test_hit_times_consistent(self, rng):
        res = CobraProcess(cycle_graph(9)).run(0, rng, record=True)
        assert res.covered
        assert res.hit_times[0] == 0
        assert int(res.hit_times.max()) == res.cover_time
        assert np.all(res.hit_times >= 0)

    def test_record_trajectories(self, rng):
        res = CobraProcess(cycle_graph(9)).run(0, rng, record=True)
        assert res.active_sizes.shape[0] == res.rounds_run + 1
        assert res.visited_counts.shape[0] == res.rounds_run + 1
        assert res.visited_counts[0] == 1
        assert res.visited_counts[-1] == 9
        # Visited counts are non-decreasing (monotone union).
        assert np.all(np.diff(res.visited_counts) >= 0)

    def test_start_set(self, rng):
        g = path_graph(6)
        res = CobraProcess(g).run([0, 5], rng)
        assert res.covered
        assert res.hit_times[0] == 0 and res.hit_times[5] == 0

    def test_round_cap_respected(self, rng):
        res = CobraProcess(cycle_graph(64)).run(0, rng, max_rounds=2)
        assert not res.covered
        assert res.cover_time == -1
        assert res.rounds_run == 2

    def test_invalid_start(self, rng):
        with pytest.raises(ValueError):
            CobraProcess(path_graph(4)).run(7, rng)

    def test_default_round_cap_generous(self):
        g = cycle_graph(32)
        assert default_round_cap(g) > 1000


class TestBatch:
    def test_batch_covers(self, rng):
        g = complete_graph(12)
        res = CobraProcess(g).run_batch(np.zeros(20, dtype=np.int64), rng)
        assert res.all_covered
        assert res.covered_fraction() == 1.0
        assert np.all(res.cover_times >= np.log2(12) - 1e-9)

    def test_batch_hit_times(self, rng):
        g = path_graph(5)
        res = CobraProcess(g).run_batch(
            np.zeros(8, dtype=np.int64), rng, track_hits=True
        )
        assert res.hit_times is not None
        assert np.all(res.hit_times[:, 0] == 0)
        assert np.all(res.hit_times.max(axis=1) == res.cover_times)

    def test_batch_respects_cap(self, rng):
        res = CobraProcess(cycle_graph(64)).run_batch(
            np.zeros(4, dtype=np.int64), rng, max_rounds=2
        )
        assert not res.all_covered
        assert res.rounds_run == 2

    def test_batch_distribution_matches_single(self):
        # Same process, two engines: distributions must agree.
        g = cycle_graph(12)
        single = np.array(
            [
                CobraProcess(g).run(0, np.random.default_rng(1000 + i)).cover_time
                for i in range(150)
            ]
        )
        batch = cover_time_samples(g, 0, 150, rng=7)
        # Compare means within joint 4-sigma.
        se = np.sqrt(single.var(ddof=1) / 150 + batch.var(ddof=1) / 150)
        assert abs(single.mean() - batch.mean()) < 4 * se

    def test_batch_input_validation(self, rng):
        proc = CobraProcess(path_graph(4))
        with pytest.raises(ValueError):
            proc.run_batch(np.empty(0, dtype=np.int64), rng)
        with pytest.raises(ValueError):
            proc.run_batch(np.array([9]), rng)


class TestConvenience:
    def test_cover_time_seeded(self):
        t1 = cover_time(complete_graph(10), rng=5)
        t2 = cover_time(complete_graph(10), rng=5)
        assert t1 == t2

    def test_cover_time_cap_raises(self):
        with pytest.raises(RuntimeError, match="did not cover"):
            cover_time(cycle_graph(64), rng=1, max_rounds=2)

    def test_samples_shape_and_batching(self):
        samples = cover_time_samples(
            complete_graph(8), runs=25, rng=3, batch_size=10
        )
        assert samples.shape == (25,)
        assert np.all(samples >= 3)  # log2(8)

    def test_hit_time_samples(self):
        hits = hit_time_samples(path_graph(4), 0, 3, runs=30, rng=2)
        assert hits.shape == (30,)
        assert np.all(hits >= 3)  # distance 3 away


class TestStarGraphBehaviour:
    def test_star_alternates_via_centre(self, rng):
        # From a leaf, everything must route through the hub.
        g = star_graph(8)
        proc = CobraProcess(g)
        active = np.array([3])
        nxt = proc.step(active, rng)
        assert nxt.tolist() == [0]
