"""GraphSequence providers: determinism, invariants, caching."""

import numpy as np
import pytest

from repro.dynamics import (
    ChurnSequence,
    EdgeMarkovianSequence,
    FrozenSequence,
    RewiringSequence,
    SnapshotSchedule,
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_regular_graph,
)

UNREACHABLE = np.iinfo(np.int64).max


@pytest.fixture(scope="module")
def expander():
    return random_regular_graph(48, 4, rng=11)


class TestFrozenSequence:
    def test_constant_and_identical_object(self, expander):
        seq = FrozenSequence(expander)
        assert seq.graph_at(0) is expander
        assert seq.graph_at(10_000) is expander
        assert seq.n == expander.n

    def test_negative_round_rejected(self, expander):
        with pytest.raises(ValueError, match=">= 0"):
            FrozenSequence(expander).graph_at(-1)


class TestEdgeMarkovian:
    def test_round_zero_is_base(self, expander):
        seq = EdgeMarkovianSequence(expander, 0.01, 0.1, seed=3)
        assert seq.graph_at(0) == expander

    def test_seeded_determinism_any_access_order(self, expander):
        a = EdgeMarkovianSequence(expander, 0.02, 0.2, seed=9)
        b = EdgeMarkovianSequence(expander, 0.02, 0.2, seed=9)
        forward = [a.graph_at(t) for t in range(6)]
        scrambled = [b.graph_at(t) for t in (5, 0, 3, 1, 4, 2)]
        for t, order in zip((5, 0, 3, 1, 4, 2), scrambled):
            assert order == forward[t]

    def test_backwards_seek_replays(self, expander):
        seq = EdgeMarkovianSequence(expander, 0.02, 0.2, seed=9)
        g4 = seq.graph_at(4)
        seq.graph_at(40)  # advance well past the cache
        assert seq.graph_at(4) == g4

    def test_rates_move_density(self, expander):
        # death=1, birth=0 empties the graph in one round.
        seq = EdgeMarkovianSequence(expander, 0.0, 1.0, seed=1)
        assert seq.graph_at(1).m == 0
        # birth=1 fills every potential edge.
        full = EdgeMarkovianSequence(expander, 1.0, 0.0, seed=1)
        n = expander.n
        assert full.graph_at(1).m == n * (n - 1) // 2

    def test_invalid_probability_rejected(self, expander):
        with pytest.raises(ValueError, match="probability"):
            EdgeMarkovianSequence(expander, 1.5, 0.1)


class TestRewiring:
    def test_degree_and_vertex_invariants(self, expander):
        seq = RewiringSequence(expander, 12, seed=5)
        for t in (1, 3, 7, 15):
            g = seq.graph_at(t)
            assert g.n == expander.n
            assert g.m == expander.m
            assert np.array_equal(g.degrees, expander.degrees)

    def test_keep_connected(self):
        # A cycle disconnects under almost any unchecked 2-swap.
        base = cycle_graph(31)
        seq = RewiringSequence(base, 8, seed=2)
        for t in range(1, 12):
            assert seq.graph_at(t).is_connected()

    def test_actually_rewires(self, expander):
        seq = RewiringSequence(expander, 12, seed=5)
        assert seq.graph_at(3) != expander

    def test_zero_swaps_reuses_snapshot_object(self, expander):
        seq = RewiringSequence(expander, 0, seed=5)
        assert seq.graph_at(5) is seq.graph_at(17)

    def test_seeded_determinism(self, expander):
        a = RewiringSequence(expander, 6, seed=13)
        b = RewiringSequence(expander, 6, seed=13)
        assert all(a.graph_at(t) == b.graph_at(t) for t in range(8))

    def test_disconnected_base_rejected(self):
        from repro.graphs import Graph

        disconnected = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="connected"):
            RewiringSequence(disconnected, 2, seed=0)


class TestChurn:
    @pytest.fixture(scope="class")
    def seq(self):
        base = random_regular_graph(40, 3, rng=21)
        return ChurnSequence(base, leave=0.25, rejoin=0.4, seed=17)

    def test_source_never_disconnected(self, seq):
        """The anchor stays active, attached, and in one component."""
        for t in range(30):
            g = seq.graph_at(t)
            active = seq.active_at(t)
            assert active[seq.anchor]
            assert g.degrees[seq.anchor] >= 1
            # The active set is exactly the anchor's BFS component.
            reached = g.bfs_distances(seq.anchor) < UNREACHABLE
            assert np.array_equal(reached, active)

    def test_churn_actually_happens(self, seq):
        assert any(not seq.active_at(t).all() for t in range(1, 30))

    def test_departed_vertices_keep_identity(self, seq):
        for t in range(1, 10):
            g = seq.graph_at(t)
            inactive = ~seq.active_at(t)
            assert g.n == seq.base.n
            assert np.all(g.degrees[inactive] == 0)

    def test_seeded_determinism(self):
        base = random_regular_graph(40, 3, rng=21)
        a = ChurnSequence(base, 0.25, 0.4, seed=17)
        b = ChurnSequence(base, 0.25, 0.4, seed=17)
        assert all(a.graph_at(t) == b.graph_at(t) for t in range(12))

    def test_protected_vertices_stay(self):
        base = complete_graph(12)
        seq = ChurnSequence(base, leave=0.9, rejoin=0.1, seed=1, protected=(0, 5))
        for t in range(15):
            active = seq.active_at(t)
            assert active[0] and active[5]

    def test_multi_protected_stay_connected_to_anchor(self):
        # Regression: distant protected vertices on a sparse graph must
        # never end up active-but-severed from the anchor's component.
        seq = ChurnSequence(
            cycle_graph(9), leave=0.6, rejoin=0.1, seed=3, protected=(0, 4)
        )
        for t in range(60):
            g = seq.graph_at(t)
            active = seq.active_at(t)
            assert active[0] and active[4]
            reached = g.bfs_distances(seq.anchor) < UNREACHABLE
            assert np.array_equal(reached, active), t


class TestSnapshotSchedule:
    def test_durations_and_hold(self):
        a, b = complete_graph(6), cycle_graph(6)
        seq = SnapshotSchedule([a, b], durations=[3, 2])
        assert [seq.graph_at(t) for t in range(7)] == [a, a, a, b, b, b, b]

    def test_cycle_wraps(self):
        a, b = complete_graph(6), cycle_graph(6)
        seq = SnapshotSchedule([a, b], cycle=True)
        assert [seq.graph_at(t) for t in range(4)] == [a, b, a, b]

    def test_lazy_factories_materialize_once_while_cached(self):
        calls = []

        def factory(tag):
            def build():
                calls.append(tag)
                return complete_graph(5)

            return build

        seq = SnapshotSchedule(
            [complete_graph(5), factory("x"), factory("y")],
            durations=[2, 2, 2],
            cycle=True,
        )
        for t in range(18):  # three full cycles
            seq.graph_at(t)
        assert calls == ["x", "y"]  # LRU retained them across cycles

    def test_lru_eviction_rematerializes(self):
        calls = []

        def factory(tag):
            def build():
                calls.append(tag)
                return path_graph(4)

            return build

        seq = SnapshotSchedule(
            [path_graph(4)] + [factory(i) for i in range(1, 4)],
            cycle=True,
            cache_size=2,
        )
        for t in range(8):  # two cycles over 4 snapshots, cache of 2
            seq.graph_at(t)
        assert len(calls) == 6  # every lazy hit after eviction rebuilds

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ValueError, match="n="):
            SnapshotSchedule([complete_graph(5), complete_graph(6)]).graph_at(1)

    def test_bad_durations_rejected(self):
        with pytest.raises(ValueError, match="one-to-one"):
            SnapshotSchedule([complete_graph(5)], durations=[1, 2])
