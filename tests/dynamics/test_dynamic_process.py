"""Dynamic COBRA/BIPS runners: static regression, determinism, churn."""

import numpy as np
import pytest

from repro.core import BipsProcess, CobraProcess
from repro.dynamics import (
    ChurnSequence,
    DynamicBipsProcess,
    DynamicCobraProcess,
    EdgeMarkovianSequence,
    FrozenSequence,
    RewiringSequence,
    dynamic_cover_time_samples,
    dynamic_infection_time_samples,
    run_seed_pairs,
)
from repro.graphs import Graph, cycle_graph, random_regular_graph


@pytest.fixture(scope="module")
def expander():
    return random_regular_graph(48, 4, rng=11)


class TestFrozenMatchesStatic:
    """The rate-0 regression contract: frozen dynamic == static, exactly."""

    def test_cobra_run_exact(self, expander):
        frozen = FrozenSequence(expander)
        for seed in range(6):
            dynamic = DynamicCobraProcess(frozen).run(
                0, np.random.default_rng(seed)
            )
            static = CobraProcess(expander).run(0, np.random.default_rng(seed))
            assert dynamic.cover_time == static.cover_time
            assert np.array_equal(dynamic.hit_times, static.hit_times)

    def test_cobra_lazy_and_bernoulli_branching(self, expander):
        frozen = FrozenSequence(expander)
        for branching, lazy in ((2, True), (1.5, False), (3, False)):
            dynamic = DynamicCobraProcess(frozen, branching, lazy=lazy).run(
                0, np.random.default_rng(7)
            )
            static = CobraProcess(expander, branching, lazy=lazy).run(
                0, np.random.default_rng(7)
            )
            assert dynamic.cover_time == static.cover_time

    def test_bips_run_exact(self, expander):
        frozen = FrozenSequence(expander)
        for seed in range(6):
            dynamic = DynamicBipsProcess(frozen, 0).run(np.random.default_rng(seed))
            static = BipsProcess(expander, 0).run(np.random.default_rng(seed))
            assert dynamic.infection_time == static.infection_time
            assert np.array_equal(dynamic.sizes, static.sizes)

    def test_cover_time_samples_exact(self, expander):
        frozen = FrozenSequence(expander)
        dynamic = dynamic_cover_time_samples(frozen, 12, seed=99)
        proc = CobraProcess(expander)
        static = np.array(
            [
                proc.run(0, np.random.default_rng(proc_seed)).cover_time
                for _, proc_seed in run_seed_pairs(99, 12)
            ]
        )
        assert np.array_equal(dynamic, static)


class TestDeterminism:
    def test_same_seeds_identical_cover_samples(self, expander):
        factory = lambda topo: RewiringSequence(expander, 8, seed=topo)  # noqa: E731
        a = dynamic_cover_time_samples(factory, 10, seed=42)
        b = dynamic_cover_time_samples(factory, 10, seed=42)
        assert np.array_equal(a, b)

    def test_same_seeds_identical_infection_samples(self, expander):
        factory = lambda topo: EdgeMarkovianSequence(  # noqa: E731
            expander, 0.02, 0.2, seed=topo
        )
        a = dynamic_infection_time_samples(factory, 6, seed=5)
        b = dynamic_infection_time_samples(factory, 6, seed=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self, expander):
        factory = lambda topo: RewiringSequence(expander, 8, seed=topo)  # noqa: E731
        a = dynamic_cover_time_samples(factory, 10, seed=42)
        b = dynamic_cover_time_samples(factory, 10, seed=43)
        assert not np.array_equal(a, b)

    def test_topology_and_process_streams_separate(self, expander):
        """A shared sequence replays identically for both samplers."""
        shared = RewiringSequence(expander, 8, seed=3)
        a = dynamic_cover_time_samples(shared, 5, seed=1)
        snapshots = [shared.graph_at(t) for t in range(5)]
        b = dynamic_cover_time_samples(shared, 5, seed=1)
        assert np.array_equal(a, b)
        assert all(shared.graph_at(t) == snapshots[t] for t in range(5))


class TestChurnAndIsolation:
    def test_cobra_particles_survive_churn(self):
        base = random_regular_graph(32, 3, rng=2)
        seq = ChurnSequence(base, leave=0.2, rejoin=0.5, seed=5)
        result = DynamicCobraProcess(seq).run(0, np.random.default_rng(0))
        assert result.covered
        assert result.cover_time >= 1

    def test_bips_source_persists_under_churn(self):
        base = random_regular_graph(32, 3, rng=2)
        seq = ChurnSequence(base, leave=0.1, rejoin=0.6, seed=5)
        proc = DynamicBipsProcess(seq, 0)
        rng = np.random.default_rng(1)
        infected = np.zeros(32, dtype=bool)
        infected[0] = True
        for t in range(40):
            infected = proc.step_at(t, infected, rng)
            assert infected[0]

    def test_isolated_vertices_cannot_be_infected(self):
        # Star minus the hub: all leaves isolated.
        hubless = Graph(4, [(0, 1)], name="pair-plus-isolated")
        seq = FrozenSequence(hubless)
        proc = DynamicBipsProcess(seq, 0)
        infected = np.zeros(4, dtype=bool)
        infected[0] = True
        nxt = proc.step_at(0, infected, np.random.default_rng(0))
        assert not nxt[2] and not nxt[3]

    def test_stranded_cobra_particle_stays_put(self):
        stranded = Graph(3, [(0, 1)], name="stranded")
        proc = DynamicCobraProcess(FrozenSequence(stranded))
        nxt = proc.step_at(0, np.array([2]), np.random.default_rng(0))
        assert np.array_equal(nxt, [2])

    def test_cap_reported_not_raised_on_run(self):
        stranded = Graph(3, [(0, 1)], name="stranded")
        result = DynamicCobraProcess(FrozenSequence(stranded)).run(
            0, np.random.default_rng(0), max_rounds=5
        )
        assert not result.covered
        assert result.cover_time == -1

    def test_sampler_raises_on_cap(self):
        stranded = Graph(3, [(0, 1)], name="stranded")
        with pytest.raises(RuntimeError, match="round cap"):
            dynamic_cover_time_samples(
                FrozenSequence(stranded), 2, seed=0, max_rounds=5
            )


class TestValidateFlag:
    """Core engines accept disconnected snapshot views when asked."""

    def test_cobra_validate_false_allows_disconnected(self):
        disconnected = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="connected"):
            CobraProcess(disconnected)
        proc = CobraProcess(disconnected, validate=False)
        nxt = proc.step(np.array([0]), np.random.default_rng(0))
        assert nxt.size >= 1

    def test_bips_validate_false_allows_disconnected(self):
        disconnected = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError, match="connected"):
            BipsProcess(disconnected, 0)
        proc = BipsProcess(disconnected, 0, validate=False)
        infected = np.zeros(4, dtype=bool)
        infected[0] = True
        assert proc.step(infected, np.random.default_rng(0))[0]


class TestRewiredCycleSpeedup:
    def test_scattered_frontier_covers_faster(self):
        cycle = cycle_graph(65)
        static = dynamic_cover_time_samples(FrozenSequence(cycle), 12, seed=1)
        factory = lambda topo: RewiringSequence(cycle, 32, seed=topo)  # noqa: E731
        rewired = dynamic_cover_time_samples(factory, 12, seed=1)
        assert rewired.mean() < static.mean()
