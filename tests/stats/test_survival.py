"""Survival-curve tests."""

import numpy as np
import pytest

from repro.stats import empirical_survival, survival_distance


class TestEmpiricalSurvival:
    def test_hand_computed(self):
        # Times {1, 1, 3}: P(T>0)=1, P(T>1)=1/3, P(T>2)=1/3, P(T>3)=0.
        curve = empirical_survival(np.array([1, 1, 3]))
        assert curve.probabilities.tolist() == pytest.approx(
            [1.0, 1 / 3, 1 / 3, 0.0]
        )

    def test_monotone_nonincreasing(self):
        rng = np.random.default_rng(1)
        curve = empirical_survival(rng.integers(0, 30, size=200))
        assert np.all(np.diff(curve.probabilities) <= 1e-12)

    def test_censored_counted_as_surviving(self):
        curve = empirical_survival(np.array([1, -1, -1]), horizon=3)
        assert curve.probabilities.tolist() == pytest.approx(
            [1.0, 2 / 3, 2 / 3, 2 / 3]
        )

    def test_at_beyond_grid(self):
        curve = empirical_survival(np.array([2, 2]))
        assert curve.at(-1) == 1.0
        assert curve.at(100) == 0.0

    def test_horizon_extension(self):
        curve = empirical_survival(np.array([1]), horizon=5)
        assert curve.horizons.shape == (6,)
        assert curve.at(5) == 0.0

    def test_stderr_shape(self):
        curve = empirical_survival(np.array([0, 1, 2, 3]))
        assert curve.stderr().shape == curve.probabilities.shape

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_survival(np.array([], dtype=np.int64))


class TestSurvivalDistance:
    def test_identical_zero(self):
        a = empirical_survival(np.array([1, 2, 3]))
        assert survival_distance(a, a) == 0.0

    def test_differs(self):
        a = empirical_survival(np.array([1, 1, 1]))
        b = empirical_survival(np.array([3, 3, 3]))
        assert survival_distance(a, b) == pytest.approx(1.0)
