"""Seed-spawning tests: determinism and independence."""

import numpy as np
import pytest

from repro.stats import generator_from, spawn_generators, spawn_seeds


class TestSpawning:
    def test_deterministic(self):
        a = [g.random(3) for g in spawn_generators(42, 4)]
        b = [g.random(3) for g in spawn_generators(42, 4)]
        for x, y in zip(a, b):
            assert np.allclose(x, y)

    def test_children_differ(self):
        gens = spawn_generators(42, 3)
        streams = [g.random(8) for g in gens]
        assert not np.allclose(streams[0], streams[1])
        assert not np.allclose(streams[1], streams[2])

    def test_from_seedsequence(self):
        ss = np.random.SeedSequence(7)
        assert len(spawn_seeds(ss, 5)) == 5

    def test_count_validated(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)

    def test_zero_count(self):
        assert spawn_seeds(1, 0) == []


class TestGeneratorFrom:
    def test_passthrough(self):
        g = np.random.default_rng(1)
        assert generator_from(g) is g

    def test_from_int_and_none(self):
        assert isinstance(generator_from(5), np.random.Generator)
        assert isinstance(generator_from(None), np.random.Generator)

    def test_from_seed_sequence(self):
        g = generator_from(np.random.SeedSequence(3))
        assert isinstance(g, np.random.Generator)

    def test_int_determinism(self):
        assert generator_from(9).random() == generator_from(9).random()


class TestSeedSequenceFrom:
    def test_int_and_none_and_passthrough(self):
        import numpy as np

        from repro.stats import seed_sequence_from

        ss = seed_sequence_from(5)
        assert isinstance(ss, np.random.SeedSequence)
        assert ss.entropy == 5
        existing = np.random.SeedSequence(9)
        assert seed_sequence_from(existing) is existing
        assert isinstance(seed_sequence_from(None), np.random.SeedSequence)

    def test_generator_is_deterministic_and_advances(self):
        import numpy as np

        from repro.stats import seed_sequence_from

        a = seed_sequence_from(np.random.default_rng(3))
        b = seed_sequence_from(np.random.default_rng(3))
        assert a.entropy == b.entropy
        # One draw is consumed from the generator, by contract.
        gen = np.random.default_rng(3)
        seed_sequence_from(gen)
        untouched = np.random.default_rng(3)
        untouched.integers(2**63)
        assert gen.integers(10) == untouched.integers(10)
