"""Two-sample comparison tests."""

import numpy as np
import pytest

from repro.stats import (
    ks_compare,
    permutation_mean_test,
    same_distribution,
)


class TestKs:
    def test_same_distribution_accepted(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=400), rng.normal(size=400)
        assert ks_compare(a, b).consistent()

    def test_shifted_distribution_rejected(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, size=400)
        b = rng.normal(2, 1, size=400)
        assert not ks_compare(a, b).consistent()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_compare([], [1.0])


class TestPermutation:
    def test_equal_means_accepted(self):
        rng = np.random.default_rng(3)
        a, b = rng.exponential(size=80), rng.exponential(size=80)
        assert permutation_mean_test(a, b, rng=4).consistent()

    def test_different_means_rejected(self):
        rng = np.random.default_rng(5)
        a = rng.normal(0, 1, size=80)
        b = rng.normal(1.5, 1, size=80)
        assert not permutation_mean_test(a, b, rng=6).consistent()

    def test_p_value_never_zero(self):
        res = permutation_mean_test([0.0] * 10, [100.0] * 10, rng=7)
        assert res.p_value > 0.0

    def test_identical_samples_p_one(self):
        res = permutation_mean_test([1.0, 2.0], [1.0, 2.0], rng=8)
        assert res.p_value == pytest.approx(1.0)


class TestEngineEquivalence:
    def test_cobra_batch_vs_single(self):
        # The repository's actual use case: two engines, one law.
        import numpy as np

        from repro.core import CobraProcess, cover_time_samples
        from repro.graphs import cycle_graph

        g = cycle_graph(13)
        batch = cover_time_samples(g, runs=200, rng=9)
        single = np.array(
            [
                CobraProcess(g).run(0, np.random.default_rng(3000 + i)).cover_time
                for i in range(200)
            ]
        )
        assert same_distribution(batch, single, rng=10)

    def test_rho1_vs_b2(self):
        from repro.core import BernoulliBranching, cover_time_samples
        from repro.graphs import complete_graph

        g = complete_graph(24)
        a = cover_time_samples(g, runs=200, branching=2, rng=11)
        b = cover_time_samples(
            g, runs=200, branching=BernoulliBranching(1.0), rng=12
        )
        assert same_distribution(a, b, rng=13)
