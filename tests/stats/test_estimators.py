"""Estimator tests."""

import numpy as np
import pytest

from repro.stats import bootstrap_ci, mean_ci, quantile_estimate, whp_quantile


class TestMeanCI:
    def test_point_estimate(self):
        est = mean_ci(np.array([1.0, 2.0, 3.0]))
        assert est.value == pytest.approx(2.0)
        assert est.lower < 2.0 < est.upper
        assert est.n_samples == 3

    def test_single_sample_degenerate(self):
        est = mean_ci(np.array([5.0]))
        assert est.value == est.lower == est.upper == 5.0

    def test_constant_samples(self):
        est = mean_ci(np.full(10, 7.0))
        assert est.half_width == 0.0

    def test_coverage_calibration(self):
        # ~95% of intervals should contain the true mean.
        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(300):
            est = mean_ci(rng.normal(10.0, 2.0, size=30))
            hits += est.lower <= 10.0 <= est.upper
        assert 0.90 <= hits / 300 <= 0.99

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci(np.array([]))

    def test_overlap(self):
        a = mean_ci(np.array([1.0, 2.0, 3.0]))
        b = mean_ci(np.array([2.0, 3.0, 4.0]))
        c = mean_ci(np.array([100.0, 101.0]))
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestQuantiles:
    def test_median(self):
        est = quantile_estimate(np.arange(101, dtype=float), 0.5, rng=1)
        assert est.value == pytest.approx(50.0)

    def test_whp_is_95th(self):
        x = np.arange(1000, dtype=float)
        est = whp_quantile(x, rng=2)
        assert est.value == pytest.approx(np.quantile(x, 0.95))

    def test_bounds_bracket_point(self):
        rng = np.random.default_rng(3)
        est = quantile_estimate(rng.exponential(size=500), 0.9, rng=4)
        assert est.lower <= est.value <= est.upper

    def test_validation(self):
        with pytest.raises(ValueError):
            quantile_estimate(np.array([1.0]), 1.5)
        with pytest.raises(ValueError):
            quantile_estimate(np.array([]), 0.5)


class TestBootstrap:
    def test_mean_statistic(self):
        rng = np.random.default_rng(5)
        x = rng.normal(3.0, 1.0, size=200)
        est = bootstrap_ci(x, np.mean, rng=6)
        assert est.lower <= 3.0 <= est.upper or abs(est.value - 3.0) < 0.3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([]), np.mean)
