"""Scaling-fit tests: known laws must be recovered."""

import numpy as np
import pytest

from repro.stats import doubling_ratio, fit_polylog, fit_power_law


class TestPowerLaw:
    def test_recovers_exact_law(self):
        x = np.array([8, 16, 32, 64, 128], dtype=float)
        y = 3.0 * x**0.5
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(0.5, abs=1e-9)
        assert fit.amplitude == pytest.approx(3.0, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_recovery(self):
        rng = np.random.default_rng(1)
        x = np.array([16, 32, 64, 128, 256, 512], dtype=float)
        y = 2.0 * x**1.5 * np.exp(rng.normal(0, 0.05, x.size))
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(1.5, abs=0.1)
        assert fit.r_squared > 0.98

    def test_predict(self):
        fit = fit_power_law([1.0, 2.0, 4.0], [2.0, 4.0, 8.0])
        assert fit.predict(8.0) == pytest.approx(16.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0, -2.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([2.0, 2.0], [1.0, 3.0])


class TestPolylog:
    def test_recovers_log_power(self):
        n = np.array([2**k for k in range(4, 12)], dtype=float)
        y = 5.0 * np.log(n) ** 2
        fit = fit_polylog(n, y)
        assert fit.exponent == pytest.approx(2.0, abs=1e-9)

    def test_linear_log(self):
        n = np.array([10, 100, 1000, 10000], dtype=float)
        fit = fit_polylog(n, np.log(n))
        assert fit.exponent == pytest.approx(1.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_polylog([1.0, 10.0], [1.0, 2.0])  # n must be > 1


class TestDoublingRatio:
    def test_power_law_ratios(self):
        x = np.array([8, 16, 32, 64], dtype=float)
        y = x**2
        assert np.allclose(doubling_ratio(x, y), 4.0)

    def test_sorts_by_x(self):
        x = np.array([32, 8, 16], dtype=float)
        y = x.copy()
        assert np.allclose(doubling_ratio(x, y), 2.0)
