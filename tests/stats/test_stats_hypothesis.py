"""Property-based tests for the statistics toolkit."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.stats import (
    empirical_survival,
    fit_power_law,
    mean_ci,
    quantile_estimate,
)

finite_samples = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=60),
    elements=st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
)


@given(finite_samples)
@settings(max_examples=100, deadline=None)
def test_mean_ci_brackets_mean(x):
    est = mean_ci(x)
    assert est.lower - 1e-9 <= est.value <= est.upper + 1e-9
    assert est.value == float(np.mean(x))


@given(finite_samples, st.floats(min_value=0.05, max_value=0.95))
@settings(max_examples=80, deadline=None)
def test_quantile_within_sample_range(x, q):
    est = quantile_estimate(x, q, rng=0)
    assert x.min() - 1e-9 <= est.value <= x.max() + 1e-9


@given(
    hnp.arrays(
        dtype=np.int64,
        shape=st.integers(min_value=1, max_value=80),
        elements=st.integers(min_value=0, max_value=40),
    )
)
@settings(max_examples=80, deadline=None)
def test_survival_properties(times):
    curve = empirical_survival(times)
    p = curve.probabilities
    assert np.all(p >= -1e-12) and np.all(p <= 1.0 + 1e-12)
    assert np.all(np.diff(p) <= 1e-12)  # non-increasing
    assert p[-1] == 0.0  # grid extends to the max observed time
    # P(T > t) * N is integral.
    counts = p * times.size
    assert np.allclose(counts, np.round(counts))


@given(
    st.floats(min_value=-2.0, max_value=2.0),
    st.floats(min_value=0.1, max_value=10.0),
    st.integers(min_value=3, max_value=12),
)
@settings(max_examples=80, deadline=None)
def test_power_law_fit_inverts_construction(exponent, amplitude, points):
    x = np.geomspace(2.0, 2.0**10, points)
    y = amplitude * x**exponent
    fit = fit_power_law(x, y)
    assert abs(fit.exponent - exponent) < 1e-8
    assert abs(fit.amplitude - amplitude) / amplitude < 1e-6
