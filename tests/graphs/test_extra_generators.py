"""Tests for the extended graph families (wheel, clique ring, caterpillar)."""

import pytest

from repro.graphs import (
    caterpillar_graph,
    diameter,
    ring_of_cliques,
    sweep_conductance,
    wheel_graph,
)


class TestWheel:
    def test_structure(self):
        g = wheel_graph(9)
        assert g.n == 9
        assert g.m == 2 * 8  # spokes + rim
        assert g.degree(0) == 8
        assert all(g.degree(i) == 3 for i in range(1, 9))
        assert diameter(g) == 2

    def test_error(self):
        with pytest.raises(ValueError):
            wheel_graph(4)


class TestRingOfCliques:
    def test_structure(self):
        g = ring_of_cliques(4, 5)
        assert g.n == 20
        assert g.m == 4 * 10 + 4  # clique edges + bridges
        assert g.is_connected()

    def test_low_conductance(self):
        # More cliques / bigger cliques -> smaller conductance.
        phi_small, _ = sweep_conductance(ring_of_cliques(4, 4))
        phi_large, _ = sweep_conductance(ring_of_cliques(8, 8))
        assert phi_large < phi_small

    def test_diameter_scales_with_ring(self):
        assert diameter(ring_of_cliques(8, 4)) > diameter(ring_of_cliques(3, 4))

    def test_error(self):
        with pytest.raises(ValueError):
            ring_of_cliques(2, 4)
        with pytest.raises(ValueError):
            ring_of_cliques(4, 2)


class TestCaterpillar:
    def test_structure(self):
        g = caterpillar_graph(4, 3)
        assert g.n == 16
        assert g.m == 15  # a tree
        assert g.degree(0) == 1 + 3  # spine end: 1 spine edge + 3 legs
        assert g.degree(1) == 2 + 3

    def test_is_tree(self):
        g = caterpillar_graph(6, 2)
        assert g.m == g.n - 1
        assert g.is_connected()

    def test_diameter(self):
        # leaf - spine(0..s-1) - leaf: s + 1 edges.
        assert diameter(caterpillar_graph(5, 2)) == 6

    def test_error(self):
        with pytest.raises(ValueError):
            caterpillar_graph(1, 2)
        with pytest.raises(ValueError):
            caterpillar_graph(3, 0)
