"""Spectral toolkit tests against closed-form spectra."""

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    barbell_graph,
    cheeger_bounds,
    complete_graph,
    conductance_of_cut,
    cycle_graph,
    eigenvalue_gap,
    hypercube_graph,
    petersen_graph,
    random_regular_graph,
    random_walk_spectrum,
    second_eigenvalue,
    spectral_profile,
    sweep_conductance,
    transition_matrix,
)


class TestTransitionMatrix:
    def test_rows_sum_to_one(self, petersen):
        p = transition_matrix(petersen)
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_lazy_rows_sum_to_one(self, petersen):
        p = transition_matrix(petersen, lazy=True)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert np.all(np.diag(p) >= 0.5 - 1e-12)

    def test_isolated_vertex_rejected(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError):
            transition_matrix(g)


class TestClosedFormSpectra:
    def test_complete_graph(self):
        # K_n: eigenvalues 1 and -1/(n-1); lambda = 1/(n-1).
        n = 8
        assert second_eigenvalue(complete_graph(n)) == pytest.approx(1 / (n - 1))

    def test_cycle(self):
        # C_n: eigenvalues cos(2 pi k / n).  For odd n the largest
        # absolute value among k != 0 is the near -1 one:
        # |cos(pi (n-1)/n)| = cos(pi/n).
        n = 9
        assert second_eigenvalue(cycle_graph(n)) == pytest.approx(
            np.cos(np.pi / n)
        )

    def test_even_cycle_bipartite(self):
        # Bipartite: -1 in the spectrum, so lambda = 1.
        assert second_eigenvalue(cycle_graph(8)) == pytest.approx(1.0)

    def test_hypercube_lazy_gap(self):
        # Q_d eigenvalues 1 - 2k/d; lazy spectrum 1 - k/d; lazy gap 1/d.
        for d in (3, 4, 5):
            assert eigenvalue_gap(hypercube_graph(d), lazy=True) == pytest.approx(
                1.0 / d
            )

    def test_petersen(self):
        # Petersen adjacency eigenvalues 3, 1, -2 -> P eigenvalues
        # 1, 1/3, -2/3; lambda = 2/3.
        assert second_eigenvalue(petersen_graph()) == pytest.approx(2 / 3)

    def test_full_spectrum_sorted_and_bounded(self, petersen):
        vals = random_walk_spectrum(petersen)
        assert vals[0] == pytest.approx(1.0)
        assert np.all(np.diff(vals) <= 1e-12)
        assert vals[-1] >= -1.0 - 1e-12


class TestSparsePath:
    def test_large_graph_uses_lanczos(self):
        # n > dense limit: exercise the eigsh branch and cross-check a
        # known value (complete graph spectrum is degree-independent).
        g = complete_graph(700)
        assert second_eigenvalue(g) == pytest.approx(1 / 699, abs=1e-6)


class TestConductance:
    def test_cut_by_hand(self):
        # Barbell with k = 3: cutting one clique gives 1 crossing edge,
        # d(S) = 2*3 + 1 = 7.
        g = barbell_graph(3)
        phi = conductance_of_cut(g, [0, 1, 2])
        assert phi == pytest.approx(1 / 7)

    def test_cut_validation(self, k5):
        with pytest.raises(ValueError):
            conductance_of_cut(k5, [])
        with pytest.raises(ValueError):
            conductance_of_cut(k5, list(range(5)))

    def test_sweep_finds_barbell_bottleneck(self):
        g = barbell_graph(6)
        phi, subset = sweep_conductance(g)
        # The bottleneck is the single bridge edge.
        assert phi == pytest.approx(1 / (2 * 15 + 1))
        assert len(subset) == 6

    def test_sweep_is_a_valid_cut(self, petersen):
        phi, subset = sweep_conductance(petersen)
        assert phi == pytest.approx(conductance_of_cut(petersen, subset))

    def test_cheeger_sandwich(self):
        for g in (petersen_graph(), barbell_graph(5), cycle_graph(9)):
            lo, hi = cheeger_bounds(g)
            phi, _ = sweep_conductance(g)
            assert lo - 1e-9 <= phi  # sweep cut can't beat Cheeger's floor
            # phi from the sweep is an upper bound on the true phi; the
            # true phi <= hi, and sweep-phi >= true-phi, so only check
            # ordering of the analytic bounds:
            assert lo <= hi


class TestSpectralProfile:
    def test_profile_consistent(self, petersen):
        prof = spectral_profile(petersen)
        assert prof.gap == pytest.approx(1.0 - prof.second_eigenvalue)
        assert prof.cheeger_lower <= prof.conductance_upper + 1e-9
        assert prof.lazy_gap > 0

    def test_expander_gap_positive(self, expander32):
        assert eigenvalue_gap(expander32) > 0.1
