"""Validation helper tests."""

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    check_vertex,
    check_vertex_set,
    cycle_graph,
    petersen_graph,
    require_connected,
    require_nonbipartite_or_lazy,
    require_regular,
    star_graph,
)


class TestRequireConnected:
    def test_passes_on_connected(self, petersen):
        require_connected(petersen)  # no raise

    def test_raises_on_disconnected(self):
        g = Graph(4, [(0, 1)])
        with pytest.raises(ValueError, match="connected"):
            require_connected(g)


class TestRequireRegular:
    def test_returns_degree(self, petersen):
        assert require_regular(petersen) == 3

    def test_raises_on_irregular(self):
        with pytest.raises(ValueError, match="regular"):
            require_regular(star_graph(5))


class TestBipartiteGuard:
    def test_bipartite_needs_lazy(self):
        g = cycle_graph(8)
        with pytest.raises(ValueError, match="lazy"):
            require_nonbipartite_or_lazy(g, lazy=False)
        require_nonbipartite_or_lazy(g, lazy=True)  # no raise

    def test_nonbipartite_ok(self):
        require_nonbipartite_or_lazy(cycle_graph(7), lazy=False)


class TestVertexChecks:
    def test_check_vertex(self, petersen):
        assert check_vertex(petersen, 3) == 3
        assert check_vertex(petersen, np.int64(9)) == 9
        with pytest.raises(ValueError):
            check_vertex(petersen, 10)
        with pytest.raises(ValueError):
            check_vertex(petersen, -1)

    def test_check_vertex_set(self, petersen):
        out = check_vertex_set(petersen, [3, 1, 3])
        assert out.tolist() == [1, 3]
        with pytest.raises(ValueError, match="nonempty"):
            check_vertex_set(petersen, [])
        with pytest.raises(ValueError, match="range"):
            check_vertex_set(petersen, [0, 11])
