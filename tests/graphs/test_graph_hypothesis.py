"""Property-based tests for the graph substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, connected_components, is_bipartite


@st.composite
def edge_lists(draw, max_n: int = 12):
    """Random simple-graph edge lists on up to ``max_n`` vertices."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), min_size=0, max_size=len(possible))
    )
    return n, edges


@given(edge_lists())
@settings(max_examples=120, deadline=None)
def test_degree_sum_is_twice_edges(case):
    n, edges = case
    g = Graph(n, edges)
    assert int(g.degrees.sum()) == 2 * g.m
    assert g.m == len({tuple(sorted(e)) for e in edges})


@given(edge_lists())
@settings(max_examples=120, deadline=None)
def test_adjacency_symmetric(case):
    n, edges = case
    g = Graph(n, edges)
    for u in range(n):
        for v in g.neighbors(u):
            assert g.has_edge(int(v), u)


@given(edge_lists())
@settings(max_examples=100, deadline=None)
def test_csr_structure_consistent(case):
    n, edges = case
    g = Graph(n, edges)
    assert g.indptr.shape == (n + 1,)
    assert g.indptr[0] == 0
    assert g.indptr[-1] == g.indices.shape[0] == 2 * g.m
    assert np.all(np.diff(g.indptr) == g.degrees)


@given(edge_lists())
@settings(max_examples=80, deadline=None)
def test_bfs_distances_are_metric_like(case):
    n, edges = case
    g = Graph(n, edges)
    dist = g.bfs_distances(0)
    big = np.iinfo(np.int64).max
    # Edge endpoints differ by at most one level (when both reachable).
    for u, v in g.edges():
        if dist[u] != big and dist[v] != big:
            assert abs(int(dist[u]) - int(dist[v])) <= 1
    # Reachable set is exactly vertex 0's component.
    comp0 = next(c for c in connected_components(g) if 0 in c.tolist())
    reachable = np.nonzero(dist != big)[0]
    assert set(reachable.tolist()) == set(comp0.tolist())


@given(edge_lists())
@settings(max_examples=80, deadline=None)
def test_networkx_agreement(case):
    n, edges = case
    g = Graph(n, edges)
    import networkx as nx

    h = nx.Graph()
    h.add_nodes_from(range(n))
    h.add_edges_from(edges)
    assert g.m == h.number_of_edges()
    assert is_bipartite(g) == nx.is_bipartite(h)
    assert g.is_connected() == nx.is_connected(h)


@given(edge_lists(), st.integers(min_value=0, max_value=1_000_000))
@settings(max_examples=60, deadline=None)
def test_sampling_respects_adjacency(case, seed):
    n, edges = case
    g = Graph(n, edges)
    rng = np.random.default_rng(seed)
    vertices = np.nonzero(g.degrees > 0)[0]
    if vertices.size == 0:
        return
    draws = np.repeat(vertices, 3)
    targets = g.sample_neighbors(draws, rng)
    for u, v in zip(draws.tolist(), targets.tolist()):
        assert g.has_edge(u, v)
