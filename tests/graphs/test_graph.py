"""Unit tests for the CSR Graph substrate."""

import numpy as np
import pytest

from repro.graphs import Graph
from repro.graphs.graph import _ragged_arange


class TestConstruction:
    def test_basic_triangle(self):
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])
        assert g.n == 3
        assert g.m == 3
        assert g.dmax == g.dmin == 2

    def test_duplicate_edges_collapse(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.m == 1
        assert g.degree(0) == 1
        assert g.degree(2) == 0

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Graph(3, [(0, 0)])

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph(3, [(0, 3)])
        with pytest.raises(ValueError, match="out of range"):
            Graph(3, [(-1, 2)])

    def test_zero_vertices_rejected(self):
        with pytest.raises(ValueError, match="at least one vertex"):
            Graph(0, [])

    def test_empty_graph_allowed(self):
        g = Graph(4, [])
        assert g.m == 0
        assert g.dmax == 0

    def test_malformed_edges_rejected(self):
        with pytest.raises(ValueError, match="pairs"):
            Graph(3, [(0, 1, 2)])

    def test_arrays_read_only(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.indices[0] = 2

    def test_from_edges_infers_n(self):
        g = Graph.from_edges([(0, 5), (2, 3)])
        assert g.n == 6
        assert g.m == 2

    def test_from_edges_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one edge"):
            Graph.from_edges([])


class TestAccessors:
    def test_neighbors_sorted(self, petersen):
        for u in range(petersen.n):
            nbrs = petersen.neighbors(u)
            assert np.all(np.diff(nbrs) > 0)

    def test_neighbor_symmetry(self, petersen):
        for u in range(petersen.n):
            for v in petersen.neighbors(u):
                assert petersen.has_edge(int(v), u)

    def test_has_edge(self, path5):
        assert path5.has_edge(0, 1)
        assert path5.has_edge(1, 0)
        assert not path5.has_edge(0, 2)
        assert not path5.has_edge(0, 0)

    def test_edges_iteration_each_once(self, k5):
        edges = list(k5.edges())
        assert len(edges) == k5.m == 10
        assert all(u < v for u, v in edges)
        assert len(set(edges)) == 10

    def test_edge_array_matches_edges(self, petersen):
        arr = petersen.edge_array()
        assert arr.shape == (petersen.m, 2)
        assert set(map(tuple, arr.tolist())) == set(petersen.edges())

    def test_degree_sum_is_2m(self, petersen):
        assert int(petersen.degrees.sum()) == 2 * petersen.m

    def test_total_and_set_degree(self, star7):
        assert star7.total_degree() == 2 * star7.m
        assert star7.set_degree([0]) == 6
        assert star7.set_degree([1, 2]) == 2
        assert star7.set_degree(range(star7.n)) == star7.total_degree()

    def test_is_regular(self, k5, star7):
        assert k5.is_regular()
        assert not star7.is_regular()


class TestSampling:
    def test_samples_are_neighbors(self, petersen, rng):
        verts = rng.integers(0, petersen.n, size=500)
        targets = petersen.sample_neighbors(verts, rng)
        for u, v in zip(verts.tolist(), targets.tolist()):
            assert petersen.has_edge(u, v)

    def test_sampling_uniform(self, star7, rng):
        # Centre of the star: each of the 6 leaves ~uniform.
        verts = np.zeros(12000, dtype=np.int64)
        targets = star7.sample_neighbors(verts, rng)
        counts = np.bincount(targets, minlength=star7.n)[1:]
        assert counts.min() > 0
        # chi-square-ish: each leaf expected 2000, tolerate 4 sigma.
        assert np.all(np.abs(counts - 2000) < 4 * np.sqrt(2000))

    def test_isolated_vertex_raises(self, rng):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError, match="isolated"):
            g.sample_neighbors(np.array([2]), rng)

    def test_empty_sample(self, path5, rng):
        out = path5.sample_neighbors(np.empty(0, dtype=np.int64), rng)
        assert out.shape == (0,)


class TestBfs:
    def test_path_distances(self, path5):
        dist = path5.bfs_distances(0)
        assert dist.tolist() == [0, 1, 2, 3, 4]

    def test_cycle_distances(self, cycle6):
        dist = cycle6.bfs_distances(0)
        assert dist.tolist() == [0, 1, 2, 3, 2, 1]

    def test_disconnected_unreachable(self):
        g = Graph(4, [(0, 1), (2, 3)])
        dist = g.bfs_distances(0)
        big = np.iinfo(np.int64).max
        assert dist.tolist() == [0, 1, big, big]
        assert not g.is_connected()

    def test_connected(self, petersen):
        assert petersen.is_connected()


class TestInterop:
    def test_networkx_round_trip(self, petersen):
        back = Graph.from_networkx(petersen.to_networkx())
        assert back == petersen

    def test_from_networkx_relabels(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edges_from([("c", "a"), ("a", "b")])
        ours = Graph.from_networkx(g)
        assert ours.n == 3
        assert ours.m == 2

    def test_adjacency_matrix(self, path5):
        a = path5.adjacency_matrix().toarray()
        assert a.shape == (5, 5)
        assert np.allclose(a, a.T)
        assert a.sum() == 2 * path5.m

    def test_equality_and_hash(self, path5):
        other = Graph(5, [(i, i + 1) for i in range(4)])
        assert other == path5
        assert hash(other) == hash(path5)
        assert Graph(5, [(0, 1)]) != path5
        assert path5 != "not a graph"


class TestRaggedArange:
    def test_basic(self):
        out = _ragged_arange(np.array([2, 0, 3]))
        assert out.tolist() == [0, 1, 0, 1, 2]

    def test_empty(self):
        assert _ragged_arange(np.array([], dtype=np.int64)).shape == (0,)

    def test_all_zero(self):
        assert _ragged_arange(np.array([0, 0])).shape == (0,)
