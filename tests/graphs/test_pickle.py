"""Graph pickling tests (the process-pool shipping contract)."""

import pickle

import numpy as np
import pytest

from repro.graphs import Graph, petersen_graph, random_regular_graph


class TestPickle:
    def test_round_trip_equal(self, petersen):
        back = pickle.loads(pickle.dumps(petersen))
        assert back == petersen
        assert back.name == petersen.name
        assert back.degrees.tolist() == petersen.degrees.tolist()

    def test_unpickled_arrays_read_only(self, petersen):
        back = pickle.loads(pickle.dumps(petersen))
        with pytest.raises(ValueError):
            back.indices[0] = 5

    def test_unpickled_graph_usable(self, petersen, rng):
        back = pickle.loads(pickle.dumps(petersen))
        targets = back.sample_neighbors(np.array([0, 1, 2]), rng)
        for u, v in zip([0, 1, 2], targets.tolist()):
            assert back.has_edge(u, v)

    def test_large_random_graph(self):
        g = random_regular_graph(256, 8, rng=1)
        assert pickle.loads(pickle.dumps(g)) == g


class TestSweepParallel:
    def test_sweep_identical_across_worker_counts(self):
        from repro.experiments.runner import sweep_cover
        from repro.graphs import complete_graph, cycle_graph

        graphs = [complete_graph(16), cycle_graph(17), complete_graph(32)]
        serial = sweep_cover(graphs, runs=10, seed=3, n_workers=1)
        parallel = sweep_cover(graphs, runs=10, seed=3, n_workers=2)
        for a, b in zip(serial, parallel):
            assert a.graph_name == b.graph_name
            assert a.mean.value == b.mean.value
            assert a.whp.value == b.whp.value
