"""Unit tests for the graph family generators."""

import numpy as np
import pytest

from repro.graphs import (
    barbell_graph,
    binary_tree,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    diameter,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    is_bipartite,
    lollipop_graph,
    margulis_expander,
    path_graph,
    petersen_graph,
    random_regular_graph,
    star_graph,
    torus_graph,
    two_clique_bridge,
)


class TestCompleteGraph:
    def test_structure(self):
        g = complete_graph(7)
        assert g.n == 7
        assert g.m == 21
        assert g.is_regular() and g.dmax == 6
        assert diameter(g) == 1

    def test_too_small(self):
        with pytest.raises(ValueError):
            complete_graph(1)


class TestCycleAndPath:
    def test_cycle(self):
        g = cycle_graph(8)
        assert g.n == 8 and g.m == 8
        assert g.is_regular() and g.dmax == 2
        assert diameter(g) == 4
        assert is_bipartite(g)
        assert not is_bipartite(cycle_graph(7))

    def test_path(self):
        g = path_graph(6)
        assert g.m == 5
        assert diameter(g) == 5
        assert g.degrees.tolist() == [1, 2, 2, 2, 2, 1]

    def test_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)
        with pytest.raises(ValueError):
            path_graph(1)


class TestStarAndTree:
    def test_star(self):
        g = star_graph(9)
        assert g.degree(0) == 8
        assert all(g.degree(i) == 1 for i in range(1, 9))
        assert diameter(g) == 2

    def test_binary_tree(self):
        g = binary_tree(3)
        assert g.n == 15
        assert g.m == 14
        assert g.degree(0) == 2
        # Leaves are the last 8 vertices.
        assert all(g.degree(i) == 1 for i in range(7, 15))

    def test_errors(self):
        with pytest.raises(ValueError):
            star_graph(1)
        with pytest.raises(ValueError):
            binary_tree(0)


class TestLattices:
    def test_grid_2d(self):
        g = grid_graph([3, 4])
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical edges
        assert diameter(g) == 5

    def test_torus_regularity(self):
        g = torus_graph([4, 5])
        assert g.is_regular() and g.dmax == 4
        assert g.m == 2 * g.n

    def test_torus_3d(self):
        g = torus_graph([3, 3, 3])
        assert g.is_regular() and g.dmax == 6

    def test_grid_matches_networkx(self):
        import networkx as nx

        ours = grid_graph([4, 4])
        theirs = nx.grid_2d_graph(4, 4)
        assert ours.m == theirs.number_of_edges()
        assert sorted(d for _, d in theirs.degree()) == sorted(
            ours.degrees.tolist()
        )

    def test_errors(self):
        with pytest.raises(ValueError):
            grid_graph([1, 4])
        with pytest.raises(ValueError):
            torus_graph([2, 4])


class TestHypercube:
    def test_structure(self):
        g = hypercube_graph(4)
        assert g.n == 16
        assert g.is_regular() and g.dmax == 4
        assert g.m == 16 * 4 // 2
        assert diameter(g) == 4
        assert is_bipartite(g)

    def test_neighbors_differ_one_bit(self):
        g = hypercube_graph(5)
        for u in range(g.n):
            for v in g.neighbors(u):
                diff = u ^ int(v)
                assert diff and (diff & (diff - 1)) == 0  # power of two

    def test_error(self):
        with pytest.raises(ValueError):
            hypercube_graph(0)


class TestRandomRegular:
    @pytest.mark.parametrize("n,r", [(16, 3), (64, 4), (64, 8), (50, 16)])
    def test_regular_connected(self, n, r):
        g = random_regular_graph(n, r, rng=99)
        assert g.is_regular() and g.dmax == r
        assert g.m == n * r // 2
        assert g.is_connected()

    def test_determinism(self):
        a = random_regular_graph(32, 3, rng=5)
        b = random_regular_graph(32, 3, rng=5)
        assert a == b

    def test_parity_rejected(self):
        with pytest.raises(ValueError, match="even"):
            random_regular_graph(7, 3)

    def test_bad_degree_rejected(self):
        with pytest.raises(ValueError):
            random_regular_graph(10, 2)
        with pytest.raises(ValueError):
            random_regular_graph(10, 10)


class TestErdosRenyi:
    def test_default_connected(self):
        g = erdos_renyi_graph(50, rng=3)
        assert g.is_connected()
        assert g.n == 50

    def test_dense(self):
        g = erdos_renyi_graph(20, 0.9, rng=4)
        assert g.m > 100

    def test_p_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 0.0)
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 1.5)


class TestLowConductanceFamilies:
    def test_barbell(self):
        g = barbell_graph(5)
        assert g.n == 10
        assert g.m == 2 * 10 + 1
        assert g.is_connected()
        assert not g.is_regular()

    def test_lollipop(self):
        g = lollipop_graph(5, 4)
        assert g.n == 9
        assert g.m == 10 + 4
        assert diameter(g) >= 4

    def test_two_clique_bridge(self):
        g = two_clique_bridge(4, 3)
        assert g.n == 11
        assert g.is_connected()

    def test_errors(self):
        with pytest.raises(ValueError):
            barbell_graph(2)
        with pytest.raises(ValueError):
            lollipop_graph(3, 0)
        with pytest.raises(ValueError):
            two_clique_bridge(2, 1)


class TestExpanders:
    def test_margulis_connected_near_regular(self):
        g = margulis_expander(6)
        assert g.n == 36
        assert g.is_connected()
        assert g.dmax <= 8

    def test_margulis_has_constant_gap(self):
        from repro.graphs import eigenvalue_gap

        # The MGG expander family has a constant spectral gap; check it
        # does not collapse as the side grows.
        gaps = [eigenvalue_gap(margulis_expander(s)) for s in (6, 10, 14)]
        assert min(gaps) > 0.05

    def test_error(self):
        with pytest.raises(ValueError):
            margulis_expander(1)


class TestNamedAndBipartite:
    def test_petersen(self):
        g = petersen_graph()
        assert g.n == 10 and g.m == 15
        assert g.is_regular() and g.dmax == 3
        assert diameter(g) == 2

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(3, 4)
        assert g.n == 7 and g.m == 12
        assert is_bipartite(g)

    def test_error(self):
        with pytest.raises(ValueError):
            complete_bipartite_graph(0, 3)
