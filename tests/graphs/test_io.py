"""Edge-list I/O tests."""

import pytest

from repro.graphs import (
    Graph,
    parse_edge_list,
    petersen_graph,
    read_edge_list,
    write_edge_list,
)


class TestParse:
    def test_integer_labels_kept(self):
        g = parse_edge_list("0 1\n1 2\n")
        assert g.n == 3
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_integer_gap_allocates_isolated(self):
        g = parse_edge_list("0 5\n")
        assert g.n == 6
        assert g.degree(3) == 0

    def test_string_labels_relabelled(self):
        g = parse_edge_list("alice bob\nbob carol\n")
        assert g.n == 3
        assert g.m == 2

    def test_comments_and_blanks(self):
        g = parse_edge_list("# header\n\n0 1  # trailing\n1 2\n")
        assert g.m == 2

    def test_extra_columns_ignored(self):
        g = parse_edge_list("0 1 3.5\n1 2 0.2\n")  # weights dropped
        assert g.m == 2

    def test_negative_integers_treated_as_labels(self):
        g = parse_edge_list("-1 0\n0 1\n")
        assert g.n == 3  # relabelled, not integer ids

    def test_malformed_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            parse_edge_list("0\n")
        with pytest.raises(ValueError, match="no edges"):
            parse_edge_list("# only a comment\n")


class TestRoundTrip:
    def test_file_round_trip(self, tmp_path, petersen):
        path = tmp_path / "petersen.edges"
        write_edge_list(petersen, path)
        back = read_edge_list(path)
        assert back == petersen
        assert back.name == "petersen"

    def test_header_optional(self, tmp_path):
        g = Graph(3, [(0, 1), (1, 2)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path, header=False)
        assert not path.read_text().startswith("#")
        assert read_edge_list(path).m == 2
