"""Scratch-buffer hot path: bit-identity of the reusable-buffer rewrite.

``Graph.sample_neighbors`` and ``_ragged_arange`` now run on grow-only
module-level scratch instead of per-call allocations.  These tests pin
the two numpy facts the rewrite rests on — ``Generator.random(out=buf)``
consumes the stream exactly like ``random(k)``, and int64 cast-assign
truncates exactly like ``astype`` — by comparing against inline
re-implementations of the old allocating code, across interleaved call
sizes so buffer reuse (shrinking views over a dirty buffer) is
genuinely exercised.
"""

import numpy as np
import pytest

from repro.graphs import random_regular_graph, star_graph
from repro.graphs.graph import _ragged_arange


def legacy_sample(graph, vertices, rng):
    """The pre-scratch implementation, verbatim."""
    vertices = np.asarray(vertices, dtype=np.int64)
    degs = graph.degrees[vertices]
    offsets = (rng.random(vertices.shape[0]) * degs).astype(np.int64)
    return graph.indices[graph.indptr[vertices] + offsets]


def legacy_ragged(counts):
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    starts = ends - counts
    out = np.arange(total, dtype=np.int64)
    out -= np.repeat(starts, counts)
    return out


def test_sample_neighbors_bit_identical_across_interleaved_sizes():
    graph = random_regular_graph(256, 6, rng=np.random.default_rng(0))
    ref_rng, new_rng = np.random.default_rng(77), np.random.default_rng(77)
    sizes = [300, 1, 0, 512, 17, 512, 3, 100]  # grow, shrink, regrow
    for i, k in enumerate(sizes):
        verts = np.random.default_rng(i).integers(0, graph.n, size=k)
        expected = legacy_sample(graph, verts, ref_rng)
        got = graph.sample_neighbors(verts, new_rng)
        assert np.array_equal(expected, got), f"call {i} (k={k})"
    # the streams advanced in lockstep: same draws were consumed
    assert ref_rng.bit_generator.state == new_rng.bit_generator.state


def test_sample_neighbors_ragged_degrees():
    graph = star_graph(40)  # hub degree 39, leaves degree 1
    ref_rng, new_rng = np.random.default_rng(5), np.random.default_rng(5)
    verts = np.array([0, 1, 0, 39, 0], dtype=np.int64)
    for _ in range(20):
        assert np.array_equal(
            legacy_sample(graph, verts, ref_rng),
            graph.sample_neighbors(verts, new_rng),
        )


def test_sample_neighbors_results_survive_next_call():
    """Returned arrays are owned copies, not views of the scratch."""
    graph = random_regular_graph(64, 4, rng=np.random.default_rng(1))
    rng = np.random.default_rng(2)
    verts = np.arange(30, dtype=np.int64)
    first = graph.sample_neighbors(verts, rng)
    snapshot = first.copy()
    graph.sample_neighbors(verts, rng)  # would clobber a view
    assert np.array_equal(first, snapshot)


def test_sample_neighbors_isolated_vertex_still_raises():
    """The guard fires before any draw: the stream must not advance."""
    from repro.graphs.graph import Graph

    g = Graph(3, [(0, 1)])  # vertex 2 isolated
    rng = np.random.default_rng(0)
    state_before = rng.bit_generator.state
    with pytest.raises(ValueError, match="isolated"):
        g.sample_neighbors(np.array([2]), rng)
    assert rng.bit_generator.state == state_before


def test_ragged_arange_bit_identical():
    for trial in range(25):
        counts = np.random.default_rng(trial).integers(0, 9, size=120)
        assert np.array_equal(legacy_ragged(counts), _ragged_arange(counts))


def test_ragged_arange_zero_total():
    assert _ragged_arange(np.zeros(7, dtype=np.int64)).size == 0


def test_ragged_arange_output_is_mutable_copy():
    counts = np.array([4, 2, 5], dtype=np.int64)
    out = _ragged_arange(counts)
    out += 1  # must not poison the cached template
    again = _ragged_arange(counts)
    assert np.array_equal(again, legacy_ragged(counts))
