"""Structural property tests."""

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    complete_graph,
    connected_components,
    cycle_graph,
    degree_statistics,
    diameter,
    eccentricity,
    grid_graph,
    hypercube_graph,
    is_bipartite,
    path_graph,
    petersen_graph,
    star_graph,
    summarize,
)


class TestDiameter:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (path_graph(10), 9),
            (cycle_graph(10), 5),
            (cycle_graph(11), 5),
            (complete_graph(6), 1),
            (star_graph(8), 2),
            (hypercube_graph(5), 5),
            (grid_graph([4, 6]), 8),
        ],
    )
    def test_known_diameters(self, graph, expected):
        assert diameter(graph) == expected

    def test_single_vertex(self):
        assert diameter(Graph(1, [])) == 0

    def test_double_sweep_on_tree_is_exact(self):
        g = path_graph(64)
        assert diameter(g, exact_limit=10) == 63  # heuristic branch

    def test_eccentricity(self):
        g = path_graph(5)
        assert eccentricity(g, 0) == 4
        assert eccentricity(g, 2) == 2

    def test_eccentricity_disconnected_raises(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError, match="disconnected"):
            eccentricity(g, 0)


class TestBipartite:
    def test_even_structures(self):
        assert is_bipartite(path_graph(7))
        assert is_bipartite(cycle_graph(8))
        assert is_bipartite(hypercube_graph(4))
        assert is_bipartite(grid_graph([3, 3]))

    def test_odd_structures(self):
        assert not is_bipartite(cycle_graph(7))
        assert not is_bipartite(complete_graph(3))
        assert not is_bipartite(petersen_graph())

    def test_disconnected(self):
        g = Graph(5, [(0, 1), (2, 3), (3, 4), (2, 4)])  # triangle component
        assert not is_bipartite(g)


class TestComponents:
    def test_connected_single_component(self, petersen):
        comps = connected_components(petersen)
        assert len(comps) == 1
        assert comps[0].shape == (10,)

    def test_multiple_components(self):
        g = Graph(6, [(0, 1), (2, 3)])
        comps = connected_components(g)
        sizes = sorted(c.shape[0] for c in comps)
        assert sizes == [1, 1, 2, 2]


class TestSummaries:
    def test_degree_statistics(self, star7):
        stats = degree_statistics(star7)
        assert stats["dmax"] == 6
        assert stats["dmin"] == 1
        assert stats["total_degree"] == 2 * star7.m

    def test_summarize(self, q4):
        s = summarize(q4)
        assert s.n == 16
        assert s.regular
        assert s.bipartite
        assert s.diameter == 4
        row = s.row()
        assert row["graph"] == "hypercube-4"
        assert row["diam"] == 4
