"""Shared-memory CSR export tests (``Graph.to_shared`` / ``from_shared``)."""

import pickle

import numpy as np
import pytest

from repro.graphs import Graph, SharedGraph, petersen_graph, random_regular_graph


class TestRoundTrip:
    def test_attach_reproduces_graph(self):
        g = random_regular_graph(64, 4, rng=2)
        with g.to_shared() as handle:
            attached = Graph.from_shared(handle)
            assert attached == g
            assert attached.name == g.name
            assert attached.m == g.m
            assert np.array_equal(attached.degrees, g.degrees)

    def test_zero_copy_views(self):
        g = petersen_graph()
        with g.to_shared() as handle:
            attached = handle.attach()
            # Views into the segment, not copies: read-only, not owners.
            for arr in (attached.indptr, attached.indices, attached.degrees):
                assert not arr.flags.writeable
                assert not arr.flags.owndata

    def test_handle_pickles_small_and_attaches(self):
        g = random_regular_graph(256, 4, rng=3)
        with g.to_shared() as handle:
            payload = pickle.dumps(handle)
            # The whole point: the handle ships without the CSR arrays.
            assert len(payload) < 500
            clone = pickle.loads(payload)
            assert isinstance(clone, SharedGraph)
            attached = clone.attach()
            assert attached == g
            clone.close()

    def test_sampling_works_on_attached_graph(self):
        g = random_regular_graph(32, 4, rng=4)
        with g.to_shared() as handle:
            attached = handle.attach()
            rng = np.random.default_rng(0)
            chosen = attached.sample_neighbors(np.arange(32), rng)
            assert chosen.shape == (32,)
            # Every choice is a genuine neighbour.
            for v, c in enumerate(chosen):
                assert attached.has_edge(v, int(c))


class TestLifecycle:
    def test_close_is_idempotent_and_views_survive(self):
        g = petersen_graph()
        handle = g.to_shared()
        attached = handle.attach()
        handle.close()
        handle.close()  # idempotent
        # The zero-copy graph keeps the mapping alive past close().
        assert int(attached.degrees.sum()) == 2 * g.m
        handle.unlink()

    def test_unlink_removes_segment(self):
        from multiprocessing import shared_memory

        handle = petersen_graph().to_shared()
        name = handle.shm_name
        handle.close()
        handle.unlink()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_context_manager_owner_cleans_up(self):
        from multiprocessing import shared_memory

        with petersen_graph().to_shared() as handle:
            name = handle.shm_name
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_unlink_is_idempotent(self):
        handle = petersen_graph().to_shared()
        handle.unlink()
        handle.unlink()  # second unlink: silent no-op
        handle.close()

    def test_close_after_unlink_is_silent(self):
        # The run_sharded teardown order: unlink through the live
        # creator handle first, then close — and a stray extra close.
        handle = petersen_graph().to_shared()
        handle.unlink()
        handle.close()
        handle.close()
        handle.unlink()  # and a stray extra unlink after close

    def test_unlink_after_close_twice_is_silent(self):
        # close() drops the local handle, so the first unlink goes
        # through an untracked re-attach; the second must not raise
        # FileNotFoundError on the now-destroyed segment.
        handle = petersen_graph().to_shared()
        handle.close()
        handle.unlink()
        handle.unlink()

    def test_unlink_survives_external_destruction(self):
        # Another process (here: a second handle) already destroyed the
        # segment; the creator's unlink must degrade to a no-op.
        handle = petersen_graph().to_shared()
        clone = pickle.loads(pickle.dumps(handle))
        handle.close()
        clone.unlink()
        handle.unlink()
        clone.close()

    def test_attached_clone_does_not_unlink_on_exit(self):
        # A pickled (non-owner) handle used as a context manager only
        # closes; the creator still owns the segment.
        g = petersen_graph()
        owner = g.to_shared()
        try:
            with pickle.loads(pickle.dumps(owner)) as clone:
                assert clone.attach() == g
            assert Graph.from_shared(owner) == g  # still alive
        finally:
            owner.close()
            owner.unlink()
