"""Adversarial runs are bit-identical across every execution mode.

The acceptance contract of the adversary subsystem: the same
``(topo_seed, proc_seed)`` produces the same samples whether the
shards run serially in-process (``run_sharded(workers=1)``), across a
local pool (``workers=2``), or on a broker's worker fleet
(``run_distributed`` with two worker processes) — the adversarial
sequence travelling as a pickled clone locally and as a seeded wire
replay spec remotely.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.adversary import AdversarialSequence, make_adversary
from repro.core.branching import make_policy
from repro.distributed import Broker
from repro.distributed.wire import decode_task, encode_task
from repro.distributed.worker import run_worker
from repro.dynamics import dynamic_cover_time_batch
from repro.engine import BipsRule, CobraRule, SpreadEngine
from repro.graphs import random_regular_graph
from repro.parallel import ShardTask, run_shard

RUNS = 40
MAX_SHARD = 8  # several shards even at tiny run counts
_CTX = mp.get_context("fork")


def _base():
    return random_regular_graph(24, 4, rng=11)


def _sequence(kind="greedy-cut", budget=4, seed=77):
    return AdversarialSequence(
        _base(), make_adversary(kind, budget), seed, swaps_per_round=2
    )


def _engine_state(rule, seq):
    state = np.zeros((RUNS, seq.n), dtype=bool)
    state[:, 0] = True
    return SpreadEngine(rule, seq), state


@pytest.mark.parametrize("kind", ["greedy-cut", "isolating-churn", "adaptive-rri"])
def test_serial_vs_pool_workers(kind):
    seq = _sequence(kind)
    engine, state = _engine_state(CobraRule(make_policy(2)), seq)
    serial = engine.run_sharded(
        state, 123, workers=1, track_hits=True, max_shard=MAX_SHARD
    )
    pooled = engine.run_sharded(
        state, 123, workers=2, track_hits=True, max_shard=MAX_SHARD
    )
    assert np.array_equal(serial.finish_times, pooled.finish_times)
    assert np.array_equal(serial.hit_times, pooled.hit_times)
    assert np.array_equal(serial.final_state, pooled.final_state)


def test_wire_round_trip_executes_identically():
    seq = _sequence("moving-source", budget=6)
    rule = BipsRule(make_policy(2), source=0)
    engine, state = _engine_state(rule, seq)
    task = ShardTask(
        rule=rule,
        topology=seq.fresh_replay(),
        completion=engine.completion,
        state=state[:8],
        seed=np.random.SeedSequence(5),
    )
    direct = run_shard(task)
    decoded = run_shard(decode_task(encode_task(task)))
    assert np.array_equal(direct.finish_times, decoded.finish_times)
    assert np.array_equal(direct.final_state, decoded.final_state)


def test_distributed_matches_serial_reference():
    seq = _sequence("greedy-cut", budget=4)
    engine, state = _engine_state(CobraRule(make_policy(2)), seq)
    reference = engine.run_sharded(
        state, 123, workers=1, track_hits=True, max_shard=MAX_SHARD
    )
    with Broker(lease_timeout=15.0) as broker:
        procs = [
            _CTX.Process(
                target=run_worker,
                args=(broker.address,),
                kwargs={"poll_interval": 0.05},
                daemon=True,
            )
            for _ in range(2)
        ]
        for proc in procs:
            proc.start()
        try:
            got = engine.run_distributed(
                state,
                123,
                endpoint=broker.address,
                track_hits=True,
                max_shard=MAX_SHARD,
                cache=None,
            )
        finally:
            for proc in procs:
                proc.terminate()
            for proc in procs:
                proc.join(timeout=5)
    assert np.array_equal(got.finish_times, reference.finish_times)
    assert np.array_equal(got.hit_times, reference.hit_times)
    assert np.array_equal(got.final_state, reference.final_state)


def test_batched_sampler_sharded_parity():
    base = _base()

    def factory(topology_seed):
        return AdversarialSequence(
            base,
            make_adversary("greedy-cut", 4),
            topology_seed,
            swaps_per_round=2,
        )

    serial = dynamic_cover_time_batch(factory, RUNS, seed=3, workers=1)
    pooled = dynamic_cover_time_batch(factory, RUNS, seed=3, workers=2)
    assert np.array_equal(serial, pooled)


def test_shared_instance_shards_get_fresh_replays():
    # One sequence object passed (not a factory): every shard must
    # drive its own pristine replay instead of clashing on one log.
    seq = _sequence("greedy-cut", budget=4)
    times = dynamic_cover_time_batch(seq, RUNS, seed=3, workers=1)
    again = dynamic_cover_time_batch(seq.fresh_replay(), RUNS, seed=3, workers=1)
    assert np.array_equal(times, again)
