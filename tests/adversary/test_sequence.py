"""AdversarialSequence: determinism, the budget-0 anchor, replay."""

import numpy as np
import pytest

from repro.adversary import (
    AdversarialSequence,
    GreedyCutAdversary,
    IsolatingChurnAdversary,
    make_adversary,
)
from repro.core.branching import make_policy
from repro.dynamics import GraphSequence, RewiringSequence
from repro.engine import CobraRule, SpreadEngine
from repro.graphs import random_regular_graph


def _base():
    return random_regular_graph(24, 4, rng=11)


def _sequence(budget=4, seed=77, swaps=2, base=None):
    return AdversarialSequence(
        base or _base(),
        GreedyCutAdversary(budget),
        seed,
        swaps_per_round=swaps,
    )


def _run(seq, runs=6, proc_seed=123):
    state = np.zeros((runs, seq.n), dtype=bool)
    state[:, 0] = True
    engine = SpreadEngine(CobraRule(make_policy(2)), seq)
    return engine.run(state, np.random.default_rng(proc_seed))


def _graphs_equal(a, b):
    return np.array_equal(a.indptr, b.indptr) and np.array_equal(
        a.indices, b.indices
    )


class TestBudgetZeroAnchor:
    def test_snapshots_match_oblivious_rewiring_exactly(self):
        base = _base()
        adv = _sequence(budget=0, seed=5, swaps=3, base=base)
        obl = RewiringSequence(base, 3, seed=5)
        # Drive the adversarial sequence with a real engine so the
        # observation log fills, then compare every realised snapshot.
        _run(adv)
        rounds = adv.observed_rounds
        assert rounds > 1
        for t in range(rounds):
            assert _graphs_equal(adv.graph_at(t), obl.graph_at(t))

    def test_cover_samples_match_oblivious(self):
        base = _base()
        ref = _run(RewiringSequence(base, 3, seed=5))
        got = _run(_sequence(budget=0, seed=5, swaps=3, base=base))
        assert np.array_equal(got.finish_times, ref.finish_times)
        assert np.array_equal(got.final_state, ref.final_state)


class TestDeterminism:
    def test_same_seeds_same_run(self):
        a = _run(_sequence(seed=9))
        b = _run(_sequence(seed=9))
        assert np.array_equal(a.finish_times, b.finish_times)
        assert np.array_equal(a.final_state, b.final_state)

    def test_seeking_backwards_replays_identically(self):
        seq = _sequence(seed=9)
        _run(seq)
        rounds = seq.observed_rounds
        forward = [seq.graph_at(t) for t in range(rounds)]
        # Seeking to 0 discards state and replays from the log.
        replayed = [seq.graph_at(t) for t in range(rounds)]
        for f, r in zip(forward, replayed):
            assert _graphs_equal(f, r)

    def test_budget_changes_the_realisation(self):
        a = _run(_sequence(budget=0, seed=9))
        b = _run(_sequence(budget=8, seed=9))
        assert not np.array_equal(a.finish_times, b.finish_times)

    def test_active_at_tracks_churn(self):
        base = _base()
        seq = AdversarialSequence(
            base,
            IsolatingChurnAdversary(2, protected=(0,), downtime=3),
            7,
            swaps_per_round=0,
        )
        state = np.zeros((4, seq.n), dtype=bool)
        state[:, 0] = True
        SpreadEngine(CobraRule(make_policy(2)), seq, "all-active").run(
            state, np.random.default_rng(1)
        )
        masks = [seq.active_at(t) for t in range(seq.observed_rounds)]
        assert masks[0].all()  # round 0 starts fully active
        assert any(not m.all() for m in masks[1:])  # someone churned out


class TestReplayProtocol:
    def test_fresh_replay_reproduces_the_run(self):
        seq = _sequence(seed=13)
        first = _run(seq)
        again = _run(seq.fresh_replay())
        assert np.array_equal(first.finish_times, again.finish_times)

    def test_reusing_one_sequence_across_runs_raises(self):
        seq = _sequence(seed=13)
        _run(seq, proc_seed=1)
        with pytest.raises(ValueError, match="fresh_replay"):
            _run(seq, proc_seed=2)

    def test_observation_gap_raises(self):
        from repro.engine import FrontierObservation

        seq = _sequence(seed=13)
        obs = FrontierObservation(
            t=4,
            occupied=np.zeros((1, seq.n), dtype=bool),
            visited=None,
            alive=np.ones(1, dtype=bool),
        )
        with pytest.raises(ValueError, match="gap"):
            seq.observe(obs)

    def test_identical_redelivery_is_idempotent(self):
        from repro.engine import FrontierObservation

        seq = _sequence(seed=13)
        obs = FrontierObservation(
            t=0,
            occupied=np.zeros((1, seq.n), dtype=bool),
            visited=None,
            alive=np.ones(1, dtype=bool),
        )
        seq.observe(obs)
        seq.observe(obs)  # same digest again: accepted silently
        assert seq.observed_rounds == 1

    def test_base_class_fresh_replay_guards_observers(self):
        class Observing(GraphSequence):
            observes_process = True

            def _materialize(self, t):  # pragma: no cover - never called
                raise NotImplementedError

        seq = Observing(4, "observer-without-replay")
        with pytest.raises(NotImplementedError, match="fresh_replay"):
            seq.fresh_replay()

    def test_oblivious_fresh_replay_returns_self(self):
        seq = RewiringSequence(_base(), 2, seed=3)
        assert seq.fresh_replay() is seq


class TestValidation:
    def test_negative_swaps_rejected(self):
        with pytest.raises(ValueError, match="swaps_per_round"):
            _sequence(swaps=-1)

    def test_make_adversary_integration(self):
        seq = AdversarialSequence(
            _base(), make_adversary("adaptive-rri", 4), 3
        )
        assert seq.observes_process
        assert "adaptive-rri" in seq.name
