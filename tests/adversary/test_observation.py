"""The engine observation protocol: delivery order and digest helpers."""

import numpy as np

from repro.core.branching import make_policy
from repro.engine import (
    BipsRule,
    CobraRule,
    FrontierObservation,
    SpreadEngine,
)
from repro.graphs import random_regular_graph


class Recorder:
    """A static topology that opts into observations and logs them."""

    observes_process = True

    def __init__(self, graph):
        self.base = graph
        self.n = graph.n
        self.name = graph.name
        self.log = []

    def graph_at(self, t):
        return self.base

    def observe(self, observation):
        self.log.append(
            (
                observation.t,
                observation.occupied.copy(),
                None
                if observation.visited is None
                else observation.visited.copy(),
                observation.alive.copy(),
            )
        )


def _run(rule, topo, runs=4):
    state = np.zeros((runs, topo.n), dtype=bool)
    state[:, 0] = True
    engine = SpreadEngine(rule, topo)
    return engine.run(state, np.random.default_rng(3))


class TestDelivery:
    def test_one_observation_per_round_contiguous_from_zero(self):
        topo = Recorder(random_regular_graph(24, 4, rng=5))
        result = _run(CobraRule(make_policy(2)), topo)
        ts = [entry[0] for entry in topo.log]
        assert ts == list(range(result.rounds_run))

    def test_round0_observation_is_initial_state(self):
        topo = Recorder(random_regular_graph(24, 4, rng=5))
        _run(CobraRule(make_policy(2)), topo, runs=3)
        t, occupied, visited, alive = topo.log[0]
        assert t == 0
        assert occupied.shape == (3, 24)
        assert occupied.sum() == 3 and occupied[:, 0].all()
        assert np.array_equal(visited, occupied)
        assert alive.all()

    def test_alive_mask_drops_finished_runs(self):
        topo = Recorder(random_regular_graph(24, 4, rng=5))
        result = _run(CobraRule(make_policy(2)), topo, runs=6)
        finished_first = int(result.finish_times.min())
        for t, _, _, alive in topo.log:
            if t > finished_first:
                assert not alive.all()

    def test_observer_sees_state_before_snapshot_acts(self):
        # The observation for round t arrives before graph_at(t): the
        # recorder can verify by counting graph_at calls.
        class Ordered(Recorder):
            def __init__(self, graph):
                super().__init__(graph)
                self.calls = []

            def graph_at(self, t):
                self.calls.append(("graph", t))
                return self.base

            def observe(self, observation):
                self.calls.append(("observe", observation.t))
                super().observe(observation)

        topo = Ordered(random_regular_graph(24, 4, rng=5))
        _run(CobraRule(make_policy(2)), topo)
        # t = 0 is special: the engine probes graph_at(0) once for cap
        # derivation before the run proper, so only t >= 1 has a strict
        # observe-before-snapshot order to check.
        for t in range(1, len(topo.log)):
            assert topo.calls.index(("observe", t)) < topo.calls.index(
                ("graph", t)
            )

    def test_oblivious_topology_never_observed(self):
        graph = random_regular_graph(24, 4, rng=5)
        # A plain graph has no observe attribute; the engine must not
        # try to call one (and the run must match the recorder run,
        # which consumes no extra randomness).
        ref = _run(CobraRule(make_policy(2)), Recorder(graph))
        got = _run(CobraRule(make_policy(2)), graph)
        assert np.array_equal(got.finish_times, ref.finish_times)

    def test_bips_observation_includes_source(self):
        topo = Recorder(random_regular_graph(24, 4, rng=5))
        rule = BipsRule(make_policy(2), source=0)
        state = np.zeros((4, topo.n), dtype=bool)
        state[:, 0] = True
        SpreadEngine(rule, topo).run(state, np.random.default_rng(1))
        for _, occupied, _, _ in topo.log:
            assert occupied[:, 0].all()


class TestFrontierObservation:
    def _obs(self):
        occupied = np.array(
            [[True, False, True, False], [False, True, False, False]]
        )
        visited = np.array(
            [[True, True, True, False], [False, True, True, False]]
        )
        alive = np.array([True, False])
        return FrontierObservation(
            t=3, occupied=occupied, visited=visited, alive=alive
        )

    def test_shape_properties(self):
        obs = self._obs()
        assert obs.runs == 2 and obs.n == 4

    def test_frontier_sizes(self):
        assert self._obs().frontier_sizes().tolist() == [2, 1]

    def test_unions_restrict_to_alive(self):
        obs = self._obs()
        assert obs.union_occupied().tolist() == [True, False, True, False]
        assert obs.union_informed().tolist() == [True, True, True, False]

    def test_informed_falls_back_to_occupied(self):
        obs = FrontierObservation(
            t=0,
            occupied=np.ones((1, 3), dtype=bool),
            visited=None,
            alive=np.ones(1, dtype=bool),
        )
        assert np.array_equal(obs.informed, obs.occupied)

    def test_all_dead_unions_are_empty(self):
        obs = FrontierObservation(
            t=9,
            occupied=np.ones((2, 3), dtype=bool),
            visited=None,
            alive=np.zeros(2, dtype=bool),
        )
        assert not obs.union_occupied().any()
        assert not obs.union_informed().any()
