"""Adversary policies and the mutable topology state they operate on."""

import numpy as np
import pytest

from repro.adversary import (
    ADVERSARY_KINDS,
    AdaptiveRRIPolicy,
    FrontierDigest,
    GreedyCutAdversary,
    IsolatingChurnAdversary,
    MovingSourceAdversary,
    MutableTopology,
    make_adversary,
)
from repro.graphs import cycle_graph, random_regular_graph


def _mutable(graph):
    edges = graph.edge_array()
    n = graph.n
    keys = set(
        (np.minimum(edges[:, 0], edges[:, 1]) * np.int64(n)
         + np.maximum(edges[:, 0], edges[:, 1])).tolist()
    )
    return MutableTopology(n, edges, keys, np.ones(n, dtype=bool))


def _digest(t, occupied, informed=None, alive_runs=1):
    occupied = np.asarray(occupied, dtype=bool)
    informed = (
        occupied if informed is None else np.asarray(informed, dtype=bool)
    )
    return FrontierDigest(
        t=t,
        occupied=occupied,
        informed=informed | occupied,
        total_occupied=int(occupied.sum()),
        alive_runs=alive_runs,
    )


class TestMutableTopology:
    @staticmethod
    def _row_of(topo, u, v):
        e = topo.edges
        match = ((e[:, 0] == min(u, v)) & (e[:, 1] == max(u, v))).nonzero()[0]
        assert match.size == 1
        return int(match[0])

    def test_replace_pair_and_undo_restore_state(self):
        topo = _mutable(cycle_graph(8))
        before_edges = topo.edges.copy()
        before_keys = set(topo.keys)
        # Swap edges {0,1} and {4,5} into {0,4}, {1,5}.
        i, j = self._row_of(topo, 0, 1), self._row_of(topo, 4, 5)
        token = topo.replace_pair(i, j, (0, 4), (1, 5))
        assert token is not None
        assert topo.has_edge(0, 4) and topo.has_edge(1, 5)
        assert not topo.has_edge(0, 1) and not topo.has_edge(4, 5)
        topo.undo(token)
        assert np.array_equal(topo.edges, before_edges)
        assert topo.keys == before_keys

    def test_replace_pair_rejects_self_loop_parallel_identity(self):
        topo = _mutable(cycle_graph(8))
        i = self._row_of(topo, 0, 1)
        j = self._row_of(topo, 4, 5)
        before = topo.edges.copy()
        assert topo.replace_pair(i, i, (0, 2), (1, 3)) is None  # same row
        assert topo.replace_pair(i, j, (0, 0), (1, 5)) is None  # self-loop
        # Parallel edge: the cycle already has 1-2.
        assert topo.replace_pair(i, j, (1, 2), (0, 5)) is None
        # Identity: rewriting rows to their own edges.
        k = self._row_of(topo, 1, 2)
        assert topo.replace_pair(i, k, (0, 1), (1, 2)) is None
        assert np.array_equal(topo.edges, before)

    def test_connectivity_tracks_active_mask(self):
        topo = _mutable(cycle_graph(6))
        assert topo.connected()
        topo.deactivate([2])  # a cycle minus one vertex is a path
        assert topo.connected()
        topo.deactivate([4])  # two vertices gone: the path splits
        assert not topo.connected()
        topo.reactivate([2, 4])
        assert topo.connected()

    def test_frontier_degrees_count_active_neighbours(self):
        topo = _mutable(cycle_graph(6))
        mask = np.zeros(6, dtype=bool)
        mask[[0, 1]] = True
        fdeg = topo.frontier_degrees(mask)
        # Vertex 0 and 1 border each other; 2 borders 1; 5 borders 0.
        assert fdeg.tolist() == [1, 1, 1, 0, 0, 1]
        topo.deactivate([1])
        assert topo.frontier_degrees(mask).tolist() == [0, 0, 0, 0, 0, 1]

    def test_active_degrees(self):
        topo = _mutable(cycle_graph(5))
        assert topo.active_degrees().tolist() == [2] * 5
        topo.deactivate([0])
        assert topo.active_degrees().tolist() == [0, 1, 2, 2, 1]


class TestGreedyCut:
    def test_severs_boundary_and_preserves_degrees(self):
        graph = random_regular_graph(32, 4, rng=9)
        topo = _mutable(graph)
        hot = np.zeros(32, dtype=bool)
        hot[:8] = True
        before = topo.active_degrees()
        boundary_before = int(
            (hot[topo.edges[:, 0]] ^ hot[topo.edges[:, 1]]).sum()
        )
        changed = GreedyCutAdversary(8).adapt(
            topo, _digest(1, hot), np.random.default_rng(0)
        )
        assert changed
        assert np.array_equal(topo.active_degrees(), before)
        boundary_after = int(
            (hot[topo.edges[:, 0]] ^ hot[topo.edges[:, 1]]).sum()
        )
        assert boundary_after < boundary_before

    def test_budget_caps_rewired_edges(self):
        graph = random_regular_graph(32, 4, rng=9)
        hot = np.zeros(32, dtype=bool)
        hot[:8] = True
        topo = _mutable(graph)
        reference = _mutable(graph)
        GreedyCutAdversary(2).adapt(topo, _digest(1, hot), np.random.default_rng(0))
        moved = int((topo.edges != reference.edges).any(axis=1).sum())
        assert moved <= 2

    def test_keeps_connectivity(self):
        graph = random_regular_graph(32, 4, rng=9)
        topo = _mutable(graph)
        hot = np.zeros(32, dtype=bool)
        hot[:16] = True
        for t in range(1, 6):
            GreedyCutAdversary(32).adapt(
                topo, _digest(t, hot), np.random.default_rng(t)
            )
            assert topo.connected()

    def test_budget_zero_rejected_upstream(self):
        with pytest.raises(ValueError, match="budget"):
            GreedyCutAdversary(-1)


class TestIsolatingChurn:
    def test_protected_anchor_never_leaves(self):
        graph = random_regular_graph(24, 4, rng=3)
        topo = _mutable(graph)
        policy = IsolatingChurnAdversary(3, protected=(0,), downtime=2)
        hot = np.zeros(24, dtype=bool)
        hot[:12] = True
        for t in range(1, 8):
            policy.adapt(topo, _digest(t, hot), np.random.default_rng(t))
            assert topo.active[0]
            assert topo.connected()

    def test_downtime_readmits(self):
        graph = random_regular_graph(24, 4, rng=3)
        topo = _mutable(graph)
        policy = IsolatingChurnAdversary(2, protected=(0,), downtime=2)
        hot = np.ones(24, dtype=bool)
        policy.adapt(topo, _digest(1, hot), np.random.default_rng(1))
        out_first = set(np.nonzero(~topo.active)[0].tolist())
        assert out_first
        # Two rounds later with a cold frontier, the departures return.
        cold = np.zeros(24, dtype=bool)
        policy.adapt(topo, _digest(2, cold), np.random.default_rng(2))
        policy.adapt(topo, _digest(3, cold), np.random.default_rng(3))
        assert topo.active.all()

    def test_initially_out_applied_at_initialize(self):
        graph = random_regular_graph(24, 4, rng=3)
        topo = _mutable(graph)
        policy = IsolatingChurnAdversary(
            1, protected=(0,), initially_out=(5, 6)
        )
        policy.initialize(topo)
        assert not topo.active[5] and not topo.active[6]

    def test_protected_overlap_rejected(self):
        with pytest.raises(ValueError, match="protected"):
            IsolatingChurnAdversary(1, protected=(0,), initially_out=(0,))

    def test_initially_out_needs_positive_budget(self):
        # A budget-0 policy is never consulted, so its initial churn
        # could never be readmitted (and the oblivious anchor would
        # silently break): the constructor must reject it.
        with pytest.raises(ValueError, match="positive budget"):
            IsolatingChurnAdversary(0, protected=(0,), initially_out=(3,))

    def test_separated_protected_vertex_survives_the_cut_sweep(self):
        # A protected vertex can arrive already separated from the
        # anchor (the oblivious phase checks full-graph connectivity
        # only): the separation sweep must churn out unprotected
        # strays, never the protected vertex itself.
        from repro.graphs import Graph

        graph = Graph(
            6, np.array([[0, 1], [1, 2], [2, 3], [4, 5]], dtype=np.int64)
        )
        topo = _mutable(graph)
        policy = IsolatingChurnAdversary(1, protected=(0, 4))
        hot = np.zeros(6, dtype=bool)
        hot[1] = True
        policy.adapt(topo, _digest(1, hot), np.random.default_rng(0))
        assert topo.active[0] and topo.active[4]  # protected stay active
        assert not topo.active[5]  # the unprotected stray churned out


class TestMovingSource:
    def test_source_cold_edges_move_into_informed_region(self):
        graph = random_regular_graph(32, 4, rng=4)
        topo = _mutable(graph)
        informed = np.zeros(32, dtype=bool)
        informed[:16] = True
        informed[0] = True
        digest = _digest(1, informed)
        e = topo.edges
        inc = (e[:, 0] == 0) | (e[:, 1] == 0)
        other = np.where(e[:, 0] == 0, e[:, 1], e[:, 0])
        cold_before = int((inc & ~digest.informed[other]).sum())
        before = topo.active_degrees()
        changed = MovingSourceAdversary(0, 8).adapt(
            topo, digest, np.random.default_rng(0)
        )
        e = topo.edges
        inc = (e[:, 0] == 0) | (e[:, 1] == 0)
        other = np.where(e[:, 0] == 0, e[:, 1], e[:, 0])
        cold_after = int((inc & ~digest.informed[other]).sum())
        if cold_before:
            assert changed and cold_after < cold_before
        assert np.array_equal(topo.active_degrees(), before)

    def test_trigger_fraction_gates_the_move(self):
        graph = random_regular_graph(32, 4, rng=4)
        topo = _mutable(graph)
        informed = np.ones(32, dtype=bool)  # nothing cold: never triggers
        assert not MovingSourceAdversary(0, 8, trigger=0.5).adapt(
            topo, _digest(1, informed), np.random.default_rng(0)
        )

    def test_bad_trigger_rejected(self):
        with pytest.raises(ValueError, match="trigger"):
            MovingSourceAdversary(0, 4, trigger=1.5)


class TestAdaptiveRRI:
    def test_burst_fires_only_on_growth(self):
        graph = random_regular_graph(32, 4, rng=6)
        policy = AdaptiveRRIPolicy(8, growth_threshold=2.0)
        topo = _mutable(graph)
        small = np.zeros(32, dtype=bool)
        small[:2] = True
        big = np.zeros(32, dtype=bool)
        big[:10] = True
        rng = np.random.default_rng(0)
        # First digest only primes the tracker.
        assert not policy.adapt(topo, _digest(1, small), rng)
        before = topo.edges.copy()
        # 2 -> 10 is 5x growth: the burst fires and rewires something.
        assert policy.adapt(topo, _digest(2, big), rng)
        assert not np.array_equal(topo.edges, before)
        before = topo.edges.copy()
        # 10 -> 10 is below threshold: no burst.
        assert not policy.adapt(topo, _digest(3, big), rng)
        assert np.array_equal(topo.edges, before)

    def test_reset_clears_tracker(self):
        policy = AdaptiveRRIPolicy(4)
        policy._prev = 7
        policy.reset()
        assert policy._prev is None


class TestRegistry:
    @pytest.mark.parametrize("kind", ADVERSARY_KINDS)
    def test_make_adversary_round_trip(self, kind):
        policy = make_adversary(kind, 5, source=2)
        assert policy.name == kind
        assert policy.budget == 5
        fresh = policy.fresh()
        assert type(fresh) is type(policy)
        assert fresh is not policy

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown adversary"):
            make_adversary("entropy-maximiser", 1)
