"""Bit-plane gossip: packing round-trips and the distribution contract.

The bitplane backend's declared equivalence class (see
``repro/kernels/bitplane.py``) is *per-run marginal law exact, runs
within a word correlated, not bit-identical*.  The KS tests here
compare broadcast-time samples against the numpy rules using only one
run per word (runs in distinct words are independent), which is the
sampling discipline the docs prescribe.  Everything is fixed-seed, so
a pass is a pass forever.
"""

import numpy as np
import pytest

from repro.engine import PullRule, PushPullRule, PushRule, SpreadEngine
from repro.graphs import random_regular_graph, star_graph
from repro.kernels import BitPullRule, BitPushPullRule, BitPushRule
from repro.kernels.bitplane import WORD_BITS_CHOICES
from repro.stats.comparison import ks_compare

NUMPY_RULES = {
    "push": PushRule,
    "pull": PullRule,
    "push-pull": PushPullRule,
}
BIT_RULES = {
    "push": BitPushRule,
    "pull": BitPullRule,
    "push-pull": BitPushPullRule,
}


@pytest.fixture(scope="module")
def graph():
    return random_regular_graph(64, 4, rng=np.random.default_rng(3))


def one_hot(runs: int, n: int, vertex: int = 0) -> np.ndarray:
    mask = np.zeros((runs, n), dtype=bool)
    mask[:, vertex] = True
    return mask


class TestPacking:
    def test_pack_occupancy_round_trip(self):
        rng = np.random.default_rng(0)
        rule = BitPushRule(13)
        mask = rng.random((13, 40)) < 0.3
        assert np.array_equal(rule.occupancy(rule.pack(mask), 40), mask)

    def test_pack_rejects_wrong_run_count(self):
        with pytest.raises(ValueError, match="rows"):
            BitPushRule(8).pack(np.zeros((9, 10), dtype=bool))

    def test_finished_matches_dense_all(self):
        rng = np.random.default_rng(1)
        rule = BitPullRule(11)
        mask = rng.random((11, 17)) < 0.9
        mask[3] = True  # one genuinely finished run
        state = rule.pack(mask)
        assert np.array_equal(
            rule.finished(state), rule.occupancy(state, 17).all(axis=1)
        )

    def test_runs_of_is_constructor_runs(self):
        rule = BitPushPullRule(21)
        assert rule.runs_of(rule.pack(np.zeros((21, 8), dtype=bool))) == 21

    def test_invalid_word_bits_rejected(self):
        with pytest.raises(ValueError, match="word_bits"):
            BitPushRule(8, word_bits=12)

    def test_zero_runs_rejected(self):
        with pytest.raises(ValueError, match="at least one run"):
            BitPullRule(0)

    def test_word_grouping(self):
        # 16 runs at word_bits=8 -> two one-plane words.
        assert BitPushRule(16, word_bits=8)._groups == [(0, 1), (1, 2)]
        # 16 runs at word_bits=64 -> one word holding both planes.
        assert BitPushRule(16, word_bits=64)._groups == [(0, 2)]
        assert set(WORD_BITS_CHOICES) == {8, 16, 32, 64}


class TestDegreeZero:
    def test_isolated_vertices_neither_push_nor_ask(self):
        """Degree-zero vertices (churned snapshots) are skipped, not
        sampled — the rules must not raise and must leave them dark."""
        from repro.graphs.graph import Graph

        g = Graph(5, [(0, 1), (1, 2), (0, 2)])  # vertices 3, 4 isolated
        rng = np.random.default_rng(3)
        for key, cls in BIT_RULES.items():
            rule = cls(8)
            state = rule.pack(one_hot(8, g.n))
            alive = np.ones(8, dtype=bool)
            for _ in range(6):
                state = rule.step(g, state, alive, rng)
            occ = rule.occupancy(state, g.n)
            assert occ[:, :3].all(), key
            assert not occ[:, 3:].any(), key


class TestStepSemantics:
    def test_dead_runs_frozen(self, graph):
        """Bits of non-alive runs neither spread nor grow."""
        rng = np.random.default_rng(5)
        for key, cls in BIT_RULES.items():
            rule = cls(9)
            mask = np.random.default_rng(7).random((9, graph.n)) < 0.2
            mask[:, 0] = True
            state = rule.pack(mask)
            alive = np.ones(9, dtype=bool)
            alive[[0, 4]] = False
            nxt = rule.step(graph, state, alive, rng)
            occ0, occ1 = rule.occupancy(state, graph.n), rule.occupancy(nxt, graph.n)
            assert np.array_equal(occ1[~alive], occ0[~alive]), key
            assert occ1[alive].sum() >= occ0[alive].sum(), key

    def test_informed_sets_are_monotone(self, graph):
        rng = np.random.default_rng(8)
        rule = BitPushPullRule(12, word_bits=8)
        state = rule.pack(one_hot(12, graph.n))
        alive = np.ones(12, dtype=bool)
        for _ in range(10):
            nxt = rule.step(graph, state, alive, rng)
            before = rule.occupancy(state, graph.n)
            after = rule.occupancy(nxt, graph.n)
            assert np.all(after | before == after)
            state = nxt

    def test_phantom_bits_never_ask(self):
        """Runs % 8 != 0: the unused bits of the last plane stay zero
        even under pull, whose ask mask inverts the planes."""
        g = star_graph(6)
        rng = np.random.default_rng(9)
        rule = BitPullRule(5)
        state = rule.pack(one_hot(5, g.n))
        alive = np.ones(5, dtype=bool)
        for _ in range(8):
            state = rule.step(g, state, alive, rng)
        # plane bits above run 4 must still be zero
        assert not np.any(state & ~rule._run_mask[:, None])

    def test_star_center_pushes_everywhere_in_one_round(self):
        g = star_graph(9)  # vertex 0 = hub
        rule = BitPushRule(8)
        state = rule.pack(one_hot(8, g.n, vertex=1))
        # a leaf's only neighbour is the hub: one push informs it
        nxt = rule.step(g, state, np.ones(8, dtype=bool), np.random.default_rng(0))
        occ = rule.occupancy(nxt, g.n)
        assert occ[:, 0].all()


def _bitplane_word_samples(graph, rule_key: str, invocations: int, seed: int):
    """Independent broadcast-time samples: one run per 8-bit word."""
    samples = []
    for i in range(invocations):
        runs = 64
        rule = BIT_RULES[rule_key](runs, word_bits=8)
        # drive the packed rule directly so word_bits=8 is honoured
        state = rule.pack(one_hot(runs, graph.n))
        times = np.full(runs, -1, dtype=np.int64)
        rng = np.random.default_rng(seed + i)
        t = 0
        while np.any(times < 0) and t < 500:
            alive = times < 0
            state = rule.step(graph, state, alive, rng)
            t += 1
            times[alive & rule.finished(state)] = t
        assert (times >= 0).all()
        samples.append(times[::8])  # first run of each 8-run word
    return np.concatenate(samples)


class TestDistributionEquivalence:
    @pytest.mark.parametrize("rule_key", sorted(NUMPY_RULES))
    def test_broadcast_time_law_matches_numpy(self, graph, rule_key):
        """KS on broadcast times: packed vs numpy, per declared contract."""
        engine = SpreadEngine(NUMPY_RULES[rule_key](), graph)
        ref = engine.run(one_hot(192, graph.n), np.random.default_rng(100))
        assert ref.all_finished
        bit = _bitplane_word_samples(graph, rule_key, invocations=24, seed=200)
        assert ks_compare(ref.finish_times, bit).consistent(alpha=0.01), rule_key


class TestEngineIntegration:
    def test_engine_backend_bitplane_returns_dense_state(self, graph):
        engine = SpreadEngine(PushPullRule(), graph)
        state = one_hot(24, graph.n)
        result = engine.run(state, np.random.default_rng(2), backend="bitplane")
        assert result.meta["kernel_backend"] == "bitplane"
        assert result.final_state.shape == (24, graph.n)
        assert result.final_state.dtype == bool
        assert result.all_finished
        assert result.final_state.all()

    def test_engine_bitplane_deterministic(self, graph):
        engine = SpreadEngine(PushRule(), graph)
        state = one_hot(16, graph.n)
        a = engine.run(state, np.random.default_rng(4), backend="bitplane")
        b = engine.run(state, np.random.default_rng(4), backend="bitplane")
        assert np.array_equal(a.finish_times, b.finish_times)
        assert np.array_equal(a.final_state, b.final_state)

    def test_sharded_bitplane_worker_count_invariant(self, graph):
        """Per-shard packing: the merged result is identical at any
        worker count, exactly as for the numpy backend."""
        engine = SpreadEngine(PushRule(), graph)
        state = one_hot(48, graph.n)
        ref = engine.run_sharded(
            state, 31, workers=1, max_shard=16, backend="bitplane"
        )
        assert ref.meta["kernel_backend"] == "bitplane"
        for workers in (2, 3):
            got = engine.run_sharded(
                state, 31, workers=workers, max_shard=16, backend="bitplane"
            )
            assert np.array_equal(got.finish_times, ref.finish_times)
            assert np.array_equal(got.final_state, ref.final_state)
