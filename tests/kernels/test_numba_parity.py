"""Numba backend bit-identity: the fused kernels ARE the numpy kernels.

The whole module skips on the numpy-only container; CI runs it on the
numba leg.  Each case drives the same engine cell twice from the same
seed — reference backend vs ``backend="numba"`` — and requires every
scientific field to match bit-for-bit, because the fused kernels
consume the identical Generator draw stream (see
``repro/kernels/numba_backend.py``).
"""

import numpy as np
import pytest

from repro.core.branching import BernoulliBranching, FixedBranching
from repro.engine import BipsRule, CobraRule, SpreadEngine
from repro.graphs import random_regular_graph, star_graph
from repro.kernels import backend_available

pytestmark = pytest.mark.skipif(
    not backend_available("numba"), reason="needs numba installed"
)


def one_hot(runs: int, n: int) -> np.ndarray:
    mask = np.zeros((runs, n), dtype=bool)
    mask[:, 0] = True
    return mask


@pytest.fixture(scope="module")
def graph():
    return random_regular_graph(96, 4, rng=np.random.default_rng(1))


def assert_bit_identical(engine, state, seed):
    ref = engine.run(
        state, np.random.default_rng(seed), track_hits=True, backend="numpy"
    )
    got = engine.run(
        state, np.random.default_rng(seed), track_hits=True, backend="numba"
    )
    assert got.meta["kernel_backend"] == "numba"
    assert np.array_equal(ref.finish_times, got.finish_times)
    assert np.array_equal(ref.final_state, got.final_state)
    assert np.array_equal(ref.hit_times, got.hit_times)
    assert ref.rounds_run == got.rounds_run


@pytest.mark.parametrize("lazy", [False, True])
@pytest.mark.parametrize(
    "policy", [FixedBranching(2), FixedBranching(3), BernoulliBranching(0.7)]
)
def test_cobra_bit_identity(graph, policy, lazy):
    engine = SpreadEngine(CobraRule(policy, lazy=lazy), graph)
    assert_bit_identical(engine, one_hot(12, graph.n), seed=11)


@pytest.mark.parametrize("lazy", [False, True])
@pytest.mark.parametrize(
    "policy", [FixedBranching(2), BernoulliBranching(0.6)]
)
def test_bips_batch_bit_identity(graph, policy, lazy):
    engine = SpreadEngine(
        BipsRule(policy, 0, lazy=lazy), graph, completion="all-active"
    )
    assert_bit_identical(engine, one_hot(12, graph.n), seed=13)


def test_cobra_star_graph(graph):
    """Hub-and-spoke degrees exercise the CSR walk's ragged extremes."""
    g = star_graph(33)
    engine = SpreadEngine(CobraRule(FixedBranching(2)), g)
    assert_bit_identical(engine, one_hot(8, g.n), seed=17)


def test_auto_resolves_numba_and_stays_bit_identical():
    """auto on a large graph picks numba; samples must not move."""
    g = random_regular_graph(5000, 4, rng=np.random.default_rng(2))
    engine = SpreadEngine(CobraRule(FixedBranching(2)), g)
    state = one_hot(4, g.n)
    ref = engine.run(state, np.random.default_rng(23), backend="numpy")
    auto = engine.run(state, np.random.default_rng(23), backend="auto")
    assert auto.meta["kernel_backend"] == "numba"
    assert np.array_equal(ref.finish_times, auto.finish_times)
    assert np.array_equal(ref.final_state, auto.final_state)


def test_sharded_numba_matches_serial_numpy(graph):
    """The backend hint changes wall-clock, never a sharded sample."""
    engine = SpreadEngine(CobraRule(FixedBranching(2)), graph)
    state = one_hot(24, graph.n)
    ref = engine.run_sharded(state, 41, workers=1, max_shard=8, backend="numpy")
    got = engine.run_sharded(state, 41, workers=1, max_shard=8, backend="numba")
    assert np.array_equal(ref.finish_times, got.finish_times)
    assert np.array_equal(ref.final_state, got.final_state)
