"""Dispatch-layer contract: registry, selection precedence, fallbacks.

The forced-backend × rule equivalence matrix lives in
``test_bitplane.py`` (distribution contract) and
``test_numba_parity.py`` (bit-identity contract, numba-only); this
module pins the selection machinery itself — including the container's
own reality, a numpy-only environment where ``auto`` must silently
fall back.
"""

import numpy as np
import pytest

from repro.engine import BipsRule, CobraRule, FloodingRule, PushRule, SpreadEngine
from repro.core.branching import FixedBranching
from repro.graphs import random_regular_graph
from repro.kernels import (
    ENV_VAR,
    KernelBackend,
    backend_available,
    backend_names,
    kernel_contract,
    register_backend,
    requested_backend,
    resolve,
)
from repro.kernels import dispatch as dispatch_mod
from repro.kernels import numba_backend
from repro.telemetry import get_telemetry


@pytest.fixture()
def graph():
    return random_regular_graph(128, 4, rng=np.random.default_rng(0))


def cobra():
    return CobraRule(FixedBranching(2))


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = backend_names()
        assert ("numpy", "numba", "bitplane") == names[:3]

    def test_numpy_always_available(self):
        assert backend_available("numpy")

    def test_unknown_backend_not_available(self):
        assert not backend_available("no-such-backend")

    def test_contracts(self):
        assert kernel_contract("numpy") == "bit-identical"
        assert kernel_contract("numba") == "bit-identical"
        assert kernel_contract("bitplane") == "distribution"

    def test_register_requires_name(self):
        class Anon(KernelBackend):
            pass

        with pytest.raises(ValueError, match="name"):
            register_backend(Anon())


class TestRequestedBackend:
    def test_param_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert requested_backend("bitplane") == "bitplane"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "NumPy ")
        assert requested_backend(None) == "numpy"

    def test_nothing_requested(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert requested_backend(None) is None

    def test_empty_request_is_none(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "  ")
        assert requested_backend(None) is None


class TestResolve:
    def test_auto_without_numba_falls_back_to_numpy(self, monkeypatch):
        """The no-numba environment: auto silently resolves to numpy."""
        monkeypatch.setattr(numba_backend, "AVAILABLE", False)
        binding = resolve(cobra(), n=1 << 20, runs=8, requested=None)
        assert binding.backend == "numpy"
        assert binding.pack is None and binding.unpack is None

    @pytest.mark.skipif(
        not backend_available("numba"), reason="needs numba installed"
    )
    def test_auto_with_numba_picks_numba_on_large_graphs(self):
        binding = resolve(cobra(), n=1 << 20, runs=8, requested="auto")
        assert binding.backend == "numba"

    def test_auto_small_graph_stays_numpy(self, monkeypatch):
        monkeypatch.setattr(numba_backend, "AVAILABLE", True)
        n = dispatch_mod.AUTO_NUMBA_MIN_N - 1
        assert resolve(cobra(), n=n, runs=8).backend == "numpy"

    def test_auto_never_picks_bitplane(self):
        binding = resolve(PushRule(), n=1 << 20, runs=64, requested=None)
        assert binding.backend == "numpy"

    def test_forced_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve(cobra(), n=128, runs=8, requested="bogus")

    def test_forced_unavailable_backend_raises(self, monkeypatch):
        monkeypatch.setattr(numba_backend, "AVAILABLE", False)
        with pytest.raises(RuntimeError, match="not available"):
            resolve(cobra(), n=128, runs=8, requested="numba")

    def test_forced_unsupported_rule_raises(self, monkeypatch):
        monkeypatch.setattr(numba_backend, "AVAILABLE", True)
        with pytest.raises(ValueError, match="does not support"):
            resolve(FloodingRule(runs=8), n=128, runs=8, requested="numba")

    def test_single_discipline_bips_not_numba_supported(self, monkeypatch):
        monkeypatch.setattr(numba_backend, "AVAILABLE", True)
        rule = BipsRule(FixedBranching(2), 0, discipline="single")
        with pytest.raises(ValueError, match="does not support"):
            resolve(rule, n=128, runs=8, requested="numba")

    def test_zero_runs_forced_packed_backend_degrades_to_numpy(self):
        binding = resolve(PushRule(), n=128, runs=0, requested="bitplane")
        assert binding.backend == "numpy"

    def test_bitplane_binding_carries_converters(self):
        binding = resolve(PushRule(), n=128, runs=16, requested="bitplane")
        assert binding.backend == "bitplane"
        assert binding.contract == "distribution"
        mask = np.zeros((16, 128), dtype=bool)
        mask[:, 3] = True
        packed = binding.pack(mask)
        assert packed.shape == (2, 128)
        assert np.array_equal(binding.unpack(packed), mask)

    def test_dispatch_counters_increment(self):
        tel = get_telemetry()
        before = tel.counters().get("kernel.dispatch.numpy", 0)
        resolve(cobra(), n=64, runs=4, requested="numpy")
        after = tel.counters()
        assert after["kernel.dispatch.numpy"] == before + 1
        assert after["kernel.dispatch"] >= after["kernel.dispatch.numpy"]


class TestEngineMetaRecording:
    """meta["kernel_backend"] appears iff a backend was requested or
    resolution left the numpy default — the default run leaves meta
    None, preserving the meta-is-observability-only contract."""

    def test_default_run_leaves_meta_none(self, graph, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        monkeypatch.setattr(numba_backend, "AVAILABLE", False)
        engine = SpreadEngine(cobra(), graph)
        state = np.zeros((4, graph.n), dtype=bool)
        state[:, 0] = True
        result = engine.run(state, np.random.default_rng(0))
        assert result.meta is None

    def test_forced_backend_recorded(self, graph):
        engine = SpreadEngine(cobra(), graph)
        state = np.zeros((4, graph.n), dtype=bool)
        state[:, 0] = True
        result = engine.run(state, np.random.default_rng(0), backend="numpy")
        assert result.meta == {"kernel_backend": "numpy"}

    def test_env_requested_backend_recorded(self, graph, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        engine = SpreadEngine(cobra(), graph)
        state = np.zeros((4, graph.n), dtype=bool)
        state[:, 0] = True
        result = engine.run(state, np.random.default_rng(0))
        assert result.meta == {"kernel_backend": "numpy"}

    def test_forced_backend_is_bit_identical_to_default(self, graph):
        engine = SpreadEngine(cobra(), graph)
        state = np.zeros((6, graph.n), dtype=bool)
        state[:, 0] = True
        plain = engine.run(state, np.random.default_rng(11), track_hits=True)
        forced = engine.run(
            state, np.random.default_rng(11), track_hits=True, backend="numpy"
        )
        assert np.array_equal(plain.finish_times, forced.finish_times)
        assert np.array_equal(plain.final_state, forced.final_state)
        assert np.array_equal(plain.hit_times, forced.hit_times)


class TestShardedBackendThreading:
    def test_sharded_numpy_forced_matches_default(self, graph):
        engine = SpreadEngine(cobra(), graph)
        state = np.zeros((24, graph.n), dtype=bool)
        state[:, 0] = True
        default = engine.run_sharded(state, 5, workers=1, max_shard=8)
        forced = engine.run_sharded(
            state, 5, workers=1, max_shard=8, backend="numpy"
        )
        assert np.array_equal(default.finish_times, forced.finish_times)
        assert np.array_equal(default.final_state, forced.final_state)
        assert forced.meta["kernel_backend"] == "numpy"
        assert default.meta is not None
        assert "kernel_backend" not in default.meta

    def test_env_crosses_into_shard_tasks(self, graph, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        engine = SpreadEngine(cobra(), graph)
        state = np.zeros((8, graph.n), dtype=bool)
        state[:, 0] = True
        result = engine.run_sharded(state, 5, workers=1, max_shard=4)
        assert result.meta["kernel_backend"] == "numpy"
