"""Trace reconstruction and rendering (`repro trace summarize`)."""

import pytest

from repro.telemetry import (
    JsonlSink,
    MemorySink,
    Telemetry,
    load_trace,
    render_trace,
    summarize_trace,
)


def _traced_run():
    """A small two-level trace with events, counters and histograms."""
    sink = MemorySink()
    tel = Telemetry(sink, sample_every=1)
    with tel.span("engine.run_sharded", id_parts=[7], shards=2):
        for shard in range(2):
            with tel.span("shard.run", id_parts=[7, shard]) as span:
                tel.event("engine.round", t=0)
                tel.observe("engine.round.seconds", 0.001 * (shard + 1))
                span.annotate(rounds_run=5)
        tel.count("client.cache.misses", 2)
    return sink.records


class TestSummarizeTrace:
    def test_span_tree_shape(self):
        summary = summarize_trace(_traced_run())
        assert len(summary.roots) == 1
        root = summary.roots[0]
        assert root.name == "engine.run_sharded"
        assert [c.name for c in root.children] == ["shard.run", "shard.run"]
        assert {c.span_id for c in root.children} != {root.span_id}

    def test_timings_and_fields_attached(self):
        summary = summarize_trace(_traced_run())
        for child in summary.roots[0].children:
            assert child.wall_s is not None
            assert child.fields["rounds_run"] == 5
            assert child.points == 1

    def test_counters_and_histograms_aggregate(self):
        summary = summarize_trace(_traced_run())
        assert summary.counters == {"client.cache.misses": 2}
        hist = summary.histograms["engine.round.seconds"]
        assert hist["count"] == 2
        assert hist["min"] == pytest.approx(0.001)
        assert hist["max"] == pytest.approx(0.002)
        assert summary.points == {"engine.round": 2}

    def test_orphan_span_becomes_root(self):
        records = [
            {"kind": "span-end", "name": "lonely", "span": "abc",
             "parent": "never-seen", "wall_s": 0.1, "cpu_s": 0.1,
             "fields": {}},
        ]
        summary = summarize_trace(records)
        names = {root.name for root in summary.roots}
        assert "lonely" in names

    def test_record_count_and_pids(self):
        records = _traced_run()
        summary = summarize_trace(records)
        assert summary.records == len(records)
        assert len(summary.pids) == 1


class TestRenderTrace:
    def test_render_contains_tree_and_sections(self):
        text = render_trace(_traced_run())
        assert "engine.run_sharded" in text
        assert "shard.run" in text
        assert "counters:" in text
        assert "client.cache.misses" in text
        assert "histograms" in text
        assert "engine.round.seconds" in text

    def test_indentation_reflects_nesting(self):
        text = render_trace(_traced_run())
        lines = text.splitlines()
        parent = next(i for i, l in enumerate(lines) if "engine.run_sharded" in l)
        child = next(i for i, l in enumerate(lines) if "shard.run" in l)
        parent_indent = len(lines[parent]) - len(lines[parent].lstrip())
        child_indent = len(lines[child]) - len(lines[child].lstrip())
        assert child > parent
        assert child_indent > parent_indent

    def test_render_from_path(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        for record in _traced_run():
            sink.write(record)
        sink.close()
        assert render_trace(str(path)) == render_trace(load_trace(path))

    def test_empty_trace_renders(self):
        text = render_trace([])
        assert "0 records" in text
        assert "(none)" in text


class TestCliTraceCommand:
    def test_summarize_exits_zero_on_valid(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        for record in _traced_run():
            sink.write(record)
        sink.close()
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "spans:" in out

    def test_summarize_exits_nonzero_on_garbage(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert main(["trace", "summarize", str(path)]) == 1
        assert "malformed" in capsys.readouterr().err

    def test_summarize_exits_nonzero_on_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", "summarize", str(tmp_path / "nope.jsonl")]) == 1
