"""Resource profiling: one-shot snapshots and the sampler thread."""

import os

from repro.telemetry import (
    Telemetry,
    max_rss_bytes,
    resource_snapshot,
)
from repro.telemetry.resource import (
    ResourceSampler,
    cpu_seconds,
    current_rss_bytes,
    gc_collection_counts,
    open_fd_count,
)


class TestReaders:
    def test_max_rss_is_positive_bytes(self):
        rss = max_rss_bytes()
        assert rss is not None
        # A Python process with numpy loaded holds well over 4 MiB, and
        # a KiB/bytes unit mixup would land an order of magnitude off.
        assert rss > 4 * 1024 * 1024

    def test_current_rss_close_to_peak(self):
        current = current_rss_bytes()
        if current is None:  # no /proc on this platform
            return
        assert 0 < current

    def test_cpu_seconds_nonnegative_pair(self):
        cpu = cpu_seconds()
        assert cpu is not None
        user, system = cpu
        assert user >= 0.0 and system >= 0.0

    def test_open_fd_count(self):
        fds = open_fd_count()
        if fds is None:
            return
        base = fds
        handle = open(os.devnull)
        try:
            assert open_fd_count() == base + 1
        finally:
            handle.close()

    def test_gc_collection_counts_per_generation(self):
        counts = gc_collection_counts()
        assert len(counts) >= 1
        assert all(isinstance(c, int) and c >= 0 for c in counts)


class TestResourceSnapshot:
    def test_keys_and_types(self):
        snap = resource_snapshot()
        assert snap["pid"] == os.getpid()
        assert snap["max_rss_bytes"] > 0
        assert snap["cpu_user_s"] >= 0.0
        assert isinstance(snap["gc_collections"], list)

    def test_json_serialisable(self):
        import json

        json.dumps(resource_snapshot())


class TestResourceSampler:
    def test_start_publishes_gauges_immediately(self):
        tel = Telemetry()
        with ResourceSampler(tel, interval_s=60.0):
            gauges = tel.gauges()
        names = {name for name, _labels in gauges}
        assert "process.rss_bytes" in names or "process.max_rss_bytes" in names
        assert "process.cpu_user_seconds" in names
        assert ("process.gc_collections", (("generation", "0"),)) in gauges

    def test_custom_prefix(self):
        tel = Telemetry()
        sampler = ResourceSampler(tel, interval_s=60.0, prefix="worker")
        sampler.sample()
        assert any(name.startswith("worker.") for name, _ in tel.gauges())

    def test_sample_returns_snapshot(self):
        tel = Telemetry()
        snap = ResourceSampler(tel).sample()
        assert snap["pid"] == os.getpid()

    def test_stop_idempotent_and_restartable_start(self):
        tel = Telemetry()
        sampler = ResourceSampler(tel, interval_s=60.0)
        sampler.stop()  # never started: no-op
        sampler.start()
        assert sampler.start() is sampler  # idempotent while running
        sampler.stop()
        sampler.stop()

    def test_gauges_update_on_resample(self):
        tel = Telemetry()
        sampler = ResourceSampler(tel, interval_s=60.0)
        sampler.sample()
        first = dict(tel.gauges())
        sampler.sample()
        second = dict(tel.gauges())
        assert set(first) == set(second)  # same keys, values last-write-wins
