"""The live plane: exposition render/parse, HTTP server, status panel."""

import json
import urllib.error
import urllib.request

import pytest

from repro.telemetry import (
    MetricsServer,
    Telemetry,
    fetch_statusz,
    get_telemetry,
    metrics_port_from_env,
    parse_prometheus,
    render_prometheus,
    render_status_panel,
)
from repro.telemetry.live import (
    METRICS_PORT_ENV_VAR,
    human_bytes,
    latency_line,
    normalise_metric_name,
)


def _get(url, timeout=2.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.headers, response.read()


class TestNormaliseMetricName:
    def test_dots_become_underscores(self):
        assert normalise_metric_name("broker.queue.leases") == "broker_queue_leases"

    def test_arbitrary_bad_chars(self):
        assert normalise_metric_name("a-b c/d") == "a_b_c_d"

    def test_leading_digit_prefixed(self):
        assert normalise_metric_name("9lives") == "_9lives"

    def test_colon_preserved(self):
        assert normalise_metric_name("ns:metric") == "ns:metric"


class TestRenderPrometheus:
    def test_counters_and_histograms_round_trip(self):
        tel = Telemetry()
        tel.count("client.submits", 3)
        for value in (0.1, 0.2, 0.3, 0.4):
            tel.observe("wait.seconds", value)
        families = parse_prometheus(render_prometheus(tel))
        assert families["client_submits"][()] == 3.0
        assert families["wait_seconds_count"][()] == 4.0
        assert families["wait_seconds_sum"][()] == pytest.approx(1.0)
        assert set(families) >= {"wait_seconds_p50", "wait_seconds_p90", "wait_seconds_p99"}

    def test_gauges_with_labels(self):
        tel = Telemetry()
        tel.gauge("process.gc_collections", 7, generation=0)
        tel.gauge("process.gc_collections", 2, generation=1)
        families = parse_prometheus(render_prometheus(tel))
        series = families["process_gc_collections"]
        assert series[(("generation", "0"),)] == 7.0
        assert series[(("generation", "1"),)] == 2.0

    def test_extra_overrides_registry(self):
        tel = Telemetry()
        tel.count("broker.queue.leases", 1)
        text = render_prometheus(tel, extra={"counters": {"broker.queue.leases": 9}})
        assert parse_prometheus(text)["broker_queue_leases"][()] == 9.0

    def test_extra_gauges_scalar_and_labelled(self):
        tel = Telemetry()
        text = render_prometheus(
            tel,
            extra={
                "gauges": {
                    "broker.jobs": 2,
                    "broker.worker.completed": [({"worker": "conn-1"}, 5.0)],
                }
            },
        )
        families = parse_prometheus(text)
        assert families["broker_jobs"][()] == 2.0
        assert families["broker_worker_completed"][(("worker", "conn-1"),)] == 5.0

    def test_extra_histogram_summary(self):
        tel = Telemetry()
        summary = {"count": 2, "mean": 0.5, "p50": 0.5, "p90": 0.9,
                   "p99": 0.99, "max": 1.0, "min": 0.0}
        families = parse_prometheus(
            render_prometheus(tel, extra={"histograms": {"broker.wait.seconds": summary}})
        )
        assert families["broker_wait_seconds_count"][()] == 2.0
        assert families["broker_wait_seconds_sum"][()] == pytest.approx(1.0)

    def test_label_values_escaped(self):
        tel = Telemetry()
        tel.gauge("g", 1.0, key='quo"te')
        families = parse_prometheus(render_prometheus(tel))
        assert (("key", 'quo\\"te'),) in families["g"]

    def test_empty_registry_renders_empty(self):
        assert parse_prometheus(render_prometheus(Telemetry())) == {}


class TestParsePrometheus:
    def test_rejects_garbage_line(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_prometheus("ok 1\n{{{nope\n")

    def test_rejects_non_float_value(self):
        with pytest.raises(ValueError, match="not a float"):
            parse_prometheus("metric abc\n")

    def test_rejects_malformed_label_block(self):
        with pytest.raises(ValueError, match="label block"):
            parse_prometheus('metric{k=unquoted} 1\n')

    def test_comments_and_blanks_skipped(self):
        assert parse_prometheus("# TYPE x counter\n\nx 1\n") == {"x": {(): 1.0}}


class TestMetricsPortFromEnv:
    def test_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv(METRICS_PORT_ENV_VAR, raising=False)
        assert metrics_port_from_env() is None

    @pytest.mark.parametrize("spec", ["", "0", "off", "OFF"])
    def test_disable_spellings(self, monkeypatch, spec):
        monkeypatch.setenv(METRICS_PORT_ENV_VAR, spec)
        assert metrics_port_from_env() is None

    def test_env_port(self, monkeypatch):
        monkeypatch.setenv(METRICS_PORT_ENV_VAR, "9102")
        assert metrics_port_from_env() == 9102

    def test_override_wins_and_zero_is_ephemeral(self, monkeypatch):
        monkeypatch.setenv(METRICS_PORT_ENV_VAR, "9102")
        assert metrics_port_from_env(0) == 0
        assert metrics_port_from_env(7000) == 7000

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv(METRICS_PORT_ENV_VAR, "lots")
        with pytest.raises(ValueError, match=METRICS_PORT_ENV_VAR):
            metrics_port_from_env()


class TestMetricsServer:
    def test_metrics_endpoint_serves_registry(self):
        tel = get_telemetry()
        tel.count("client.submits", 4)
        with MetricsServer(port=0) as server:
            status, headers, body = _get(f"http://{server.address}/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        families = parse_prometheus(body.decode("utf-8"))
        assert families["client_submits"][()] == 4.0

    def test_healthz_defaults_ok(self):
        with MetricsServer(port=0) as server:
            status, _, body = _get(f"http://{server.address}/healthz")
        assert status == 200
        assert json.loads(body)["ok"] is True

    def test_healthz_degraded_is_503(self):
        health = lambda: {"ok": False, "detail": "sweeper dead"}  # noqa: E731
        with MetricsServer(port=0, health=health) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"http://{server.address}/healthz")
        assert excinfo.value.code == 503
        assert json.loads(excinfo.value.read())["detail"] == "sweeper dead"

    def test_statusz_default_frame(self):
        with MetricsServer(port=0) as server:
            payload = fetch_statusz(server.address)
        assert payload["role"] == "process"
        assert "resources" in payload and "telemetry" in payload

    def test_statusz_custom_callback(self):
        with MetricsServer(port=0, status=lambda: {"role": "worker", "x": 1}) as server:
            payload = fetch_statusz(server.address)
        assert payload == {"role": "worker", "x": 1}

    def test_unknown_path_is_404(self):
        with MetricsServer(port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"http://{server.address}/nope")
        assert excinfo.value.code == 404

    def test_raising_callback_is_500_and_server_survives(self):
        def boom():
            raise RuntimeError("kaput")

        with MetricsServer(port=0, status=boom) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"http://{server.address}/statusz")
            assert excinfo.value.code == 500
            # The serving thread must survive the exception.
            status, _, _ = _get(f"http://{server.address}/healthz")
            assert status == 200

    def test_extra_callback_families_served(self):
        extra = lambda: {"gauges": {"broker.jobs": 3}}  # noqa: E731
        with MetricsServer(port=0, extra=extra) as server:
            _, _, body = _get(f"http://{server.address}/metrics")
        assert parse_prometheus(body.decode("utf-8"))["broker_jobs"][()] == 3.0

    def test_breaker_state_always_present_family(self):
        from repro.resilience.retry import breaker_for, reset_breakers

        reset_breakers()
        try:
            breaker_for("live-test-ep").record_success()
            with MetricsServer(port=0) as server:
                _, _, body = _get(f"http://{server.address}/metrics")
        finally:
            reset_breakers()
        families = parse_prometheus(body.decode("utf-8"))
        assert families["retry_breaker_state"][(("key", "live-test-ep"),)] == 0.0

    def test_stop_is_idempotent(self):
        server = MetricsServer(port=0).start()
        server.stop()
        server.stop()
        MetricsServer(port=0).stop()  # never started


class TestFetchStatusz:
    def test_unreachable_raises_oserror(self):
        with pytest.raises(OSError):
            fetch_statusz("127.0.0.1:1", timeout=0.2)


class TestHumanBytes:
    def test_units(self):
        assert human_bytes(512) == "512B"
        assert human_bytes(2048) == "2.0KiB"
        assert human_bytes(3 * 1024**2) == "3.0MiB"
        assert human_bytes(5 * 1024**3) == "5.0GiB"


class TestLatencyLine:
    def test_empty_summary(self):
        assert latency_line(None) == "(no samples yet)"

    def test_formats_milliseconds(self):
        summary = {"count": 3, "p50": 0.05, "p90": 0.09, "p99": 0.099, "max": 0.1}
        line = latency_line(summary)
        assert "n=3" in line and "p50=50.0ms" in line and "max=100.0ms" in line


class TestRenderStatusPanel:
    def _frame(self):
        return {
            "role": "broker",
            "address": "127.0.0.1:7600",
            "pid": 42,
            "queue": {"jobs": 1, "pending": 2, "leased": 1, "done": 5, "failed": 0},
            "metrics": {
                "submits": 1,
                "shards_submitted": 8,
                "leases": 6,
                "completes": 5,
                "requeues": 0,
                "heartbeats": 3,
                "worker_errors": 0,
                "uptime_s": 10.0,
                "wait_s": {"count": 5, "mean": 0.05, "p50": 0.05, "p90": 0.08,
                           "p99": 0.09, "max": 0.09, "min": 0.01},
                "exec_s": None,
                "workers": {
                    "conn-1": {"completed": 3, "busy_s": 0.5, "runs": 24,
                               "rounds": 40, "throughput": 0.3, "max_rss": 1024**2},
                    "conn-2": {"completed": 2, "busy_s": 0.4, "runs": 16,
                               "rounds": 30, "throughput": 0.2},
                },
            },
            "cache": {"enabled": True, "path": "/tmp/c", "entries": 2, "bytes": 99},
            "breakers": {"127.0.0.1:7600": "closed"},
            "resources": {"rss_bytes": 1024**2, "max_rss_bytes": 2 * 1024**2,
                          "cpu_user_s": 1.5, "cpu_system_s": 0.5,
                          "open_fds": 12, "gc_collections": [10, 2, 1]},
        }

    def test_full_panel_sections(self):
        panel = render_status_panel(self._frame())
        assert panel.startswith("broker 127.0.0.1:7600 (pid 42)")
        assert "progress:" in panel and "5/8 shard(s) done" in panel
        assert "0.60 lease/s" in panel
        assert "wait    : n=5" in panel
        assert "exec    : (no samples yet)" in panel
        assert "conn-1" in panel and "rss=1.0MiB" in panel
        assert "throughput=0.30 shard/s" in panel
        assert "breakers: 127.0.0.1:7600=closed" in panel
        assert "process : rss=1.0MiB peak=2.0MiB cpu=1.5u/0.5s fds=12 gc=10/2/1" in panel

    def test_stale_marker(self):
        panel = render_status_panel(self._frame(), stale_s=7.25)
        assert "[STALE 7.2s" in panel

    def test_degraded_health(self):
        frame = self._frame()
        frame["health"] = {"ok": False, "detail": "1 stale lease(s)"}
        assert "health  : DEGRADED (1 stale lease(s))" in render_status_panel(frame)

    def test_disabled_cache(self):
        frame = self._frame()
        frame["cache"] = {"enabled": False}
        assert "cache   : disabled" in render_status_panel(frame)

    def test_minimal_frame(self):
        panel = render_status_panel({"role": "worker", "endpoint": "h:1"})
        assert panel == "worker h:1"
