"""Cross-host trace stitching: context propagation + multi-file trees.

Two halves.  The synthetic half writes client/broker/worker JSONL
files by hand (three pids, explicit span ids) and checks that
``load_traces`` + ``summarize_trace`` reconstruct one rooted tree,
report orphans instead of dropping them, and reject empty or corrupt
inputs with actionable errors.  The live half exercises the
:class:`~repro.telemetry.TraceContext` machinery directly: wire
round-trips, parent fallback for spans opened under an installed
context, and the trace id stamped onto every record.
"""

import json

import numpy as np
import pytest

from repro.core.branching import make_policy
from repro.engine import CobraRule, SpreadEngine
from repro.graphs import random_regular_graph
from repro.telemetry import (
    JsonlSink,
    MemorySink,
    TraceContext,
    configure,
    get_telemetry,
    load_jsonl,
    load_traces,
    render_trace,
    summarize_trace,
)


def _record(kind, name, *, pid, span, parent=None, ts=0.0, **extra):
    rec = {"kind": kind, "name": name, "ts": ts, "pid": pid,
           "span": span, "parent": parent}
    rec.update(extra)
    return rec


def _write_jsonl(path, records):
    path.write_text("".join(json.dumps(r) + "\n" for r in records))
    return path


def _three_host_files(tmp_path):
    """Client, broker, worker traces for one job — three pids, one tree."""
    client = _write_jsonl(tmp_path / "client.jsonl", [
        _record("span-start", "engine.run_sharded", pid=100, span="root1",
                ts=1.0, fields={}),
        _record("span-end", "engine.run_sharded", pid=100, span="root1",
                ts=2.0, wall_s=1.0, cpu_s=0.5, fields={"shards": 2}),
    ])
    broker = _write_jsonl(tmp_path / "broker.jsonl", [
        _record("span-start", "broker.job", pid=200, span="job1",
                parent="root1", ts=1.1, fields={"shards": 2}),
        _record("span-end", "broker.job", pid=200, span="job1",
                parent="root1", ts=1.9, wall_s=0.8, cpu_s=None,
                fields={"state": "done"}),
    ])
    worker = _write_jsonl(tmp_path / "worker.jsonl", [
        _record("span-start", "shard.run", pid=300, span="w1",
                parent="job1", ts=1.2, fields={}),
        _record("span-end", "shard.run", pid=300, span="w1",
                parent="job1", ts=1.5, wall_s=0.3, cpu_s=0.3, fields={}),
        _record("span-start", "shard.run", pid=300, span="w2",
                parent="job1", ts=1.5, fields={}),
        _record("span-end", "shard.run", pid=300, span="w2",
                parent="job1", ts=1.9, wall_s=0.4, cpu_s=0.4, fields={}),
    ])
    return client, broker, worker


class TestMultiFileStitching:
    def test_three_files_three_pids_one_rooted_tree(self, tmp_path):
        files = _three_host_files(tmp_path)
        summary = summarize_trace(load_traces(files))
        assert summary.pids == [100, 200, 300]
        assert not summary.orphans
        assert len(summary.roots) == 1
        root = summary.roots[0]
        assert root.name == "engine.run_sharded"
        assert [c.name for c in root.children] == ["broker.job"]
        job = root.children[0]
        assert sorted(c.span_id for c in job.children) == ["w1", "w2"]
        # Children are ordered by start timestamp.
        assert [c.span_id for c in job.children] == ["w1", "w2"]

    def test_hop_breakdown_counts_spans_and_pids(self, tmp_path):
        files = _three_host_files(tmp_path)
        summary = summarize_trace(load_traces(files))
        shard = summary.hops["shard.run"]
        assert shard["spans"] == 2
        assert shard["pids"] == 1
        assert shard["wall_total_s"] == pytest.approx(0.7)
        assert summary.hops["broker.job"]["spans"] == 1
        rendered = render_trace(load_traces(files))
        assert "per-hop breakdown" in rendered
        assert "shard.run" in rendered

    def test_file_order_does_not_matter(self, tmp_path):
        client, broker, worker = _three_host_files(tmp_path)
        summary = summarize_trace(load_traces([worker, broker, client]))
        assert len(summary.roots) == 1
        assert summary.roots[0].name == "engine.run_sharded"

    def test_orphans_reported_not_dropped(self, tmp_path):
        _client, _broker, worker = _three_host_files(tmp_path)
        # Summarizing the worker file alone: both shard spans name a
        # parent (job1) that never appears — extra roots, flagged.
        summary = summarize_trace(load_traces([worker]))
        assert len(summary.roots) == 2
        assert len(summary.orphans) == 2
        assert {s.span_id for s in summary.orphans} == {"w1", "w2"}
        rendered = render_trace(load_traces([worker]))
        assert "orphan spans" in rendered
        assert "parent=job1" in rendered

    def test_orphan_counted_in_hops(self, tmp_path):
        _client, _broker, worker = _three_host_files(tmp_path)
        summary = summarize_trace(load_traces([worker]))
        assert summary.hops["shard.run"]["orphans"] == 2


class TestLoadTraceErrors:
    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_traces([tmp_path / "nope.jsonl"])

    def test_empty_file_raises_named_valueerror(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty.jsonl.*empty"):
            load_traces([empty])

    def test_corrupt_line_raises_line_numbered_valueerror(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "counter", "name": "x", "value": 1}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            load_traces([bad])

    def test_error_in_second_file_still_raised(self, tmp_path):
        ok = _write_jsonl(
            tmp_path / "ok.jsonl",
            [_record("span-start", "a", pid=1, span="s1", fields={})],
        )
        empty = tmp_path / "late.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="late.jsonl"):
            load_traces([ok, empty])


class TestTraceContextWire:
    def test_round_trip_with_parent(self):
        ctx = TraceContext(trace_id="T", parent_span_id="P")
        assert ctx.to_wire() == {"id": "T", "parent": "P"}
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    def test_parent_omitted_when_none(self):
        assert TraceContext(trace_id="T", parent_span_id=None).to_wire() == {
            "id": "T"
        }

    @pytest.mark.parametrize(
        "wire",
        [None, "T", 7, [], {}, {"parent": "P"}, {"id": ""}, {"id": 5}],
    )
    def test_malformed_wire_decodes_to_none(self, wire):
        assert TraceContext.from_wire(wire) is None

    def test_non_string_parent_dropped(self):
        ctx = TraceContext.from_wire({"id": "T", "parent": 9})
        assert ctx == TraceContext(trace_id="T", parent_span_id=None)


class TestContextInstall:
    def test_install_returns_previous_and_stamps_records(self):
        tel = configure(MemorySink())
        ctx = TraceContext(trace_id="T1", parent_span_id="P1")
        assert tel.install_context(ctx) is None
        try:
            tel.count("hits")
            with tel.span("work"):
                pass
        finally:
            assert tel.install_context(None) is ctx
        records = tel.sink.records
        assert records, "sink saw no records"
        assert all(r["trace"] == "T1" for r in records)
        # A span opened with no local parent falls back to the
        # context's parent — the cross-process stitch point.
        start = next(r for r in records if r["kind"] == "span-start")
        assert start["parent"] == "P1"

    def test_local_parent_wins_over_context_parent(self):
        tel = configure(MemorySink())
        prev = tel.install_context(TraceContext("T1", "P1"))
        try:
            with tel.span("outer") as outer:
                with tel.span("inner"):
                    pass
        finally:
            tel.install_context(prev)
        starts = {
            r["name"]: r for r in tel.sink.records if r["kind"] == "span-start"
        }
        assert starts["outer"]["parent"] == "P1"
        assert starts["inner"]["parent"] == outer.span_id

    def test_current_context_advances_parent_to_open_span(self):
        tel = configure(MemorySink())
        prev = tel.install_context(TraceContext("T1", "P1"))
        try:
            assert tel.current_context() == TraceContext("T1", "P1")
            with tel.span("hop") as span:
                assert tel.current_context() == TraceContext("T1", span.span_id)
        finally:
            tel.install_context(prev)

    def test_current_context_derived_from_local_spans(self):
        tel = configure(MemorySink())
        assert tel.current_context() is None
        with tel.span("outer") as outer:
            with tel.span("inner") as inner:
                ctx = tel.current_context()
                assert ctx == TraceContext(outer.span_id, inner.span_id)

    def test_no_trace_key_without_context(self):
        tel = configure(MemorySink())
        tel.count("hits")
        assert "trace" not in tel.sink.records[0]


class TestRunShardedTracing:
    def test_run_sharded_installs_trace_context(self, tmp_path):
        graph = random_regular_graph(64, 4, rng=3)
        engine = SpreadEngine(CobraRule(make_policy(2)), graph)
        state = np.zeros((8, 64), dtype=bool)
        state[:, 0] = True
        path = tmp_path / "t.jsonl"
        configure(JsonlSink(path), sample_every=1)
        try:
            engine.run_sharded(state, 7, workers=1, max_shard=4)
        finally:
            configure(None)
        records = list(load_jsonl(path))
        traces = {r.get("trace") for r in records}
        # One deterministic trace id on every record of the run.
        assert len(traces) == 1 and None not in traces
        summary = summarize_trace(records)
        roots = [r for r in summary.roots if r.name == "engine.run_sharded"]
        assert len(roots) == 1
        assert not summary.orphans

    def test_run_sharded_trace_id_is_deterministic(self, tmp_path):
        graph = random_regular_graph(64, 4, rng=3)
        engine = SpreadEngine(CobraRule(make_policy(2)), graph)
        state = np.zeros((8, 64), dtype=bool)
        state[:, 0] = True
        ids = []
        for run in range(2):
            path = tmp_path / f"t{run}.jsonl"
            configure(JsonlSink(path), sample_every=1)
            try:
                engine.run_sharded(state, 7, workers=1, max_shard=4)
            finally:
                configure(None)
            ids.append({r["trace"] for r in load_jsonl(path)})
        assert ids[0] == ids[1]

    def test_context_restored_after_run_sharded(self):
        graph = random_regular_graph(64, 4, rng=3)
        engine = SpreadEngine(CobraRule(make_policy(2)), graph)
        state = np.zeros((8, 64), dtype=bool)
        state[:, 0] = True
        tel = configure(MemorySink())
        engine.run_sharded(state, 7, workers=1, max_shard=4)
        assert tel.current_context() is None
        assert get_telemetry().current_span_id() is None
