"""Telemetry must never perturb results.

The load-bearing contract of the whole subsystem: with full tracing
enabled (sample stride 1, a real JSONL sink) every execution tier —
serial engine, sharded multiprocess, distributed broker/worker —
returns outputs bit-identical to the same run with telemetry off.
Instrumentation draws no randomness and mutates nothing the engine
computes with; these tests pin that.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.core.branching import make_policy
from repro.distributed import Broker
from repro.distributed.worker import run_worker
from repro.engine import BipsRule, CobraRule, SpreadEngine
from repro.graphs import random_regular_graph
from repro.telemetry import JsonlSink, configure, load_jsonl
from repro.dynamics import RewiringSequence

RUNS = 24
MAX_SHARD = 8
_CTX = mp.get_context("fork")


def _engine(dynamic=False):
    graph = random_regular_graph(20, 4, rng=5)
    topology = RewiringSequence(graph, 2, seed=31) if dynamic else graph
    return SpreadEngine(CobraRule(make_policy(2)), topology), graph.n


def _state(n):
    state = np.zeros((RUNS, n), dtype=bool)
    state[:, 0] = True
    return state


def _fields(result):
    return (
        result.finish_times,
        result.rounds_run,
        result.final_state,
        result.hit_times,
        result.sizes,
        result.visited_counts,
    )


def _assert_identical(a, b):
    for left, right in zip(_fields(a), _fields(b)):
        if left is None or isinstance(left, int):
            assert left == right
        else:
            assert np.array_equal(left, right)


@pytest.mark.parametrize("dynamic", [False, True], ids=["static", "dynamic"])
class TestSerialParity:
    def test_engine_run_bit_identical_with_tracing(self, tmp_path, dynamic):
        engine, n = _engine(dynamic)
        rng_off = np.random.default_rng(77)
        configure(None)
        reference = engine.run(
            _state(n), rng_off, track_hits=True, record_sizes=True,
            record_visited=True,
        )

        rng_on = np.random.default_rng(77)
        configure(JsonlSink(tmp_path / "t.jsonl"), sample_every=1)
        traced = engine.run(
            _state(n), rng_on, track_hits=True, record_sizes=True,
            record_visited=True,
        )
        configure(None)
        _assert_identical(reference, traced)
        # The trace actually recorded the run (spans + round events).
        kinds = {r["kind"] for r in load_jsonl(tmp_path / "t.jsonl")}
        assert {"span-start", "span-end", "point"} <= kinds


class TestShardedParity:
    def test_run_sharded_bit_identical_with_tracing(self, tmp_path):
        engine, n = _engine()
        configure(None)
        reference = engine.run_sharded(
            _state(n), 123, workers=2, track_hits=True, max_shard=MAX_SHARD
        )

        configure(JsonlSink(tmp_path / "t.jsonl"), sample_every=1)
        traced = engine.run_sharded(
            _state(n), 123, workers=2, track_hits=True, max_shard=MAX_SHARD
        )
        configure(None)
        _assert_identical(reference, traced)

    def test_meta_is_observability_only(self):
        engine, n = _engine()
        serial = engine.run(_state(n), np.random.default_rng(123))
        sharded = engine.run_sharded(_state(n), 9, workers=2, max_shard=MAX_SHARD)
        assert serial.meta is None
        assert sharded.meta is not None
        shards = sharded.meta["shards"]
        assert len(shards) >= 2
        assert all(s["wall_s"] >= 0.0 for s in shards)
        assert sharded.meta["skew"] >= 1.0
        # meta never participates in equality-of-results comparisons:
        # the merged fields match a meta-free serial reference.
        reference = engine.run_sharded(_state(n), 9, workers=1, max_shard=MAX_SHARD)
        _assert_identical(reference, sharded)


class TestDistributedParity:
    def test_run_distributed_bit_identical_with_tracing(self, tmp_path):
        engine, n = _engine()
        configure(None)
        reference = engine.run_sharded(
            _state(n), 123, workers=1, track_hits=True, max_shard=MAX_SHARD
        )
        with Broker(lease_timeout=15.0) as broker:
            procs = [
                _CTX.Process(
                    target=run_worker,
                    args=(broker.address,),
                    kwargs={"poll_interval": 0.05},
                    daemon=True,
                )
                for _ in range(2)
            ]
            for proc in procs:
                proc.start()
            try:
                configure(JsonlSink(tmp_path / "t.jsonl"), sample_every=1)
                traced = engine.run_distributed(
                    _state(n),
                    123,
                    endpoint=broker.address,
                    track_hits=True,
                    max_shard=MAX_SHARD,
                    cache=None,
                )
                configure(None)
            finally:
                for proc in procs:
                    proc.terminate()
                for proc in procs:
                    proc.join(timeout=5)
        _assert_identical(reference, traced)
        # Wire-decoded shard results carry no per-shard meta (timings
        # travel via complete-frame stats instead), so the merged meta
        # is absent — never invented from thin air.
        assert traced.meta is None
