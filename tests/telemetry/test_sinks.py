"""Sink round-trips: memory, JSONL append/load, null."""

import json
import threading

import pytest

from repro.telemetry import (
    NULL_SINK,
    JsonlSink,
    MemorySink,
    NullSink,
    Telemetry,
    load_jsonl,
)


class TestNullSink:
    def test_write_is_noop(self):
        NULL_SINK.write({"kind": "point"})
        NULL_SINK.flush()
        NULL_SINK.close()

    def test_singleton_identity_is_the_disabled_check(self):
        assert Telemetry().sink is NULL_SINK
        assert Telemetry(NullSink()).enabled  # a *different* instance counts


class TestMemorySink:
    def test_records_accumulate_in_order(self):
        sink = MemorySink()
        sink.write({"kind": "point", "name": "a"})
        sink.write({"kind": "point", "name": "b"})
        assert [r["name"] for r in sink.records] == ["a", "b"]


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.write({"kind": "point", "name": "x", "fields": {"t": 1}})
        sink.write({"kind": "counter", "name": "c", "value": 2})
        sink.close()
        records = list(load_jsonl(path))
        assert len(records) == 2
        assert records[0]["name"] == "x"
        assert records[1]["value"] == 2

    def test_appends_across_reopen(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        first = JsonlSink(path)
        first.write({"kind": "point", "name": "a"})
        first.close()
        second = JsonlSink(path)
        second.write({"kind": "point", "name": "b"})
        second.close()
        assert [r["name"] for r in load_jsonl(path)] == ["a", "b"]

    def test_lazy_open_creates_no_file_until_write(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        JsonlSink(path)
        assert not path.exists()

    def test_through_telemetry_registry(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tel = Telemetry(JsonlSink(path))
        with tel.span("s", id_parts=[1]):
            tel.event("e", t=0)
        tel.flush()
        kinds = [r["kind"] for r in load_jsonl(path)]
        assert kinds == ["span-start", "point", "span-end"]

    def test_every_line_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tel = Telemetry(JsonlSink(path))
        tel.observe("h", 0.25)
        tel.count("c")
        tel.flush()
        for line in path.read_text().splitlines():
            json.loads(line)


class TestLoadJsonl:
    def test_invalid_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "point"}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            list(load_jsonl(path))

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError):
            list(load_jsonl(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "point", "name": "a"}\n\n')
        assert len(list(load_jsonl(path))) == 1


class TestJsonlSinkConcurrentWriters:
    """Threaded writers through one sink: no torn or interleaved lines."""

    def test_every_record_lands_whole(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        writers, per_writer = 8, 50

        def pump(writer_id):
            for i in range(per_writer):
                sink.write(
                    {"kind": "point", "name": f"w{writer_id}", "fields": {"i": i}}
                )

        threads = [
            threading.Thread(target=pump, args=(w,)) for w in range(writers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        sink.close()
        records = list(load_jsonl(path))
        assert len(records) == writers * per_writer
        # Each writer's records arrive whole and in its own order.
        for w in range(writers):
            mine = [r["fields"]["i"] for r in records if r["name"] == f"w{w}"]
            assert mine == list(range(per_writer))

    def test_concurrent_registry_counts(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tel = Telemetry(JsonlSink(path))

        def pump():
            for _ in range(100):
                tel.count("c")
                tel.event("e")

        threads = [threading.Thread(target=pump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        tel.flush()
        assert tel.counters()["c"] == 400
        kinds = [r["kind"] for r in load_jsonl(path)]
        assert kinds.count("counter") == 400
        assert kinds.count("point") == 400


class TestLoadWhileGrowing:
    """Reading a trace that another process is still appending to."""

    def test_partial_trailing_line_dropped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "point", "name": "a"}\n{"kind": "poi')
        records = list(load_jsonl(path))
        assert [r["name"] for r in records] == ["a"]

    def test_partial_tail_non_object_dropped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "point", "name": "a"}\n[1, 2')
        assert len(list(load_jsonl(path))) == 1

    def test_partial_tail_complete_json_but_no_newline_kept(self, tmp_path):
        # A final line that *parses* is a finished record whose newline
        # simply has not flushed yet — keep it.
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "point", "name": "a"}\n{"kind": "point", "name": "b"}')
        assert [r["name"] for r in load_jsonl(path)] == ["a", "b"]

    def test_mid_file_corruption_still_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"bad\n{"kind": "point", "name": "a"}\n')
        with pytest.raises(ValueError, match="line 1"):
            list(load_jsonl(path))

    def test_terminated_corrupt_final_line_still_raises(self, tmp_path):
        # The newline means the writer *finished* the line: real corruption.
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "point", "name": "a"}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            list(load_jsonl(path))

    def test_load_traces_tolerates_growing_file(self, tmp_path):
        from repro.telemetry import load_traces

        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "point", "name": "a"}\n{"kind": "torn')
        records = load_traces([path])
        assert [r["name"] for r in records] == ["a"]

    def test_load_traces_growing_reads_are_monotonic(self, tmp_path):
        # Simulate an appender: every prefix of a growing file loads
        # cleanly and yields a prefix of the final record list.
        full = "".join(
            json.dumps({"kind": "point", "name": f"r{i}"}) + "\n" for i in range(5)
        )
        path = tmp_path / "t.jsonl"
        seen = 0
        for cut in range(1, len(full) + 1):
            path.write_text(full[:cut])
            records = list(load_jsonl(path))
            assert len(records) >= seen
            names = [r["name"] for r in records]
            assert names == [f"r{i}" for i in range(len(names))]
            seen = len(records)
        assert seen == 5
