"""Sink round-trips: memory, JSONL append/load, null."""

import json

import pytest

from repro.telemetry import (
    NULL_SINK,
    JsonlSink,
    MemorySink,
    NullSink,
    Telemetry,
    load_jsonl,
)


class TestNullSink:
    def test_write_is_noop(self):
        NULL_SINK.write({"kind": "point"})
        NULL_SINK.flush()
        NULL_SINK.close()

    def test_singleton_identity_is_the_disabled_check(self):
        assert Telemetry().sink is NULL_SINK
        assert Telemetry(NullSink()).enabled  # a *different* instance counts


class TestMemorySink:
    def test_records_accumulate_in_order(self):
        sink = MemorySink()
        sink.write({"kind": "point", "name": "a"})
        sink.write({"kind": "point", "name": "b"})
        assert [r["name"] for r in sink.records] == ["a", "b"]


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        sink.write({"kind": "point", "name": "x", "fields": {"t": 1}})
        sink.write({"kind": "counter", "name": "c", "value": 2})
        sink.close()
        records = list(load_jsonl(path))
        assert len(records) == 2
        assert records[0]["name"] == "x"
        assert records[1]["value"] == 2

    def test_appends_across_reopen(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        first = JsonlSink(path)
        first.write({"kind": "point", "name": "a"})
        first.close()
        second = JsonlSink(path)
        second.write({"kind": "point", "name": "b"})
        second.close()
        assert [r["name"] for r in load_jsonl(path)] == ["a", "b"]

    def test_lazy_open_creates_no_file_until_write(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        JsonlSink(path)
        assert not path.exists()

    def test_through_telemetry_registry(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tel = Telemetry(JsonlSink(path))
        with tel.span("s", id_parts=[1]):
            tel.event("e", t=0)
        tel.flush()
        kinds = [r["kind"] for r in load_jsonl(path)]
        assert kinds == ["span-start", "point", "span-end"]

    def test_every_line_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tel = Telemetry(JsonlSink(path))
        tel.observe("h", 0.25)
        tel.count("c")
        tel.flush()
        for line in path.read_text().splitlines():
            json.loads(line)


class TestLoadJsonl:
    def test_invalid_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "point"}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            list(load_jsonl(path))

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError):
            list(load_jsonl(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "point", "name": "a"}\n\n')
        assert len(list(load_jsonl(path))) == 1
