"""Core telemetry contracts: span identity, sampling, aggregation."""

import numpy as np
import pytest

from repro.stats.rng import seed_sequence_from, spawn_seeds
from repro.telemetry import (
    MemorySink,
    Telemetry,
    configure,
    configure_from_env,
    get_telemetry,
    seed_id_parts,
    span_id_from,
    summarize_values,
)


class TestSpanIds:
    def test_equal_parts_equal_ids(self):
        assert span_id_from("a", 1, [2, 3]) == span_id_from("a", 1, [2, 3])

    def test_different_parts_different_ids(self):
        assert span_id_from("a", 1) != span_id_from("a", 2)
        assert span_id_from("a", 1) != span_id_from("b", 1)

    def test_id_is_16_hex(self):
        sid = span_id_from("shard.run", 7, [0])
        assert len(sid) == 16
        int(sid, 16)

    def test_seed_id_parts_distinguish_shards(self):
        master = seed_sequence_from(123)
        seeds = spawn_seeds(master, 4)
        parts = [seed_id_parts(s) for s in seeds]
        ids = {span_id_from("shard.run", *p) for p in parts}
        assert len(ids) == 4

    def test_seed_id_parts_reproducible(self):
        a = seed_id_parts(spawn_seeds(seed_sequence_from(9), 3)[1])
        b = seed_id_parts(spawn_seeds(seed_sequence_from(9), 3)[1])
        assert a == b
        assert span_id_from("shard.run", *a) == span_id_from("shard.run", *b)

    def test_tuple_and_int_entropy_forms(self):
        # numpy SeedSequence entropy can be an int or a list; both
        # canonicalise without error.
        assert seed_id_parts(np.random.SeedSequence(5))[0] == 5
        parts = seed_id_parts(np.random.SeedSequence([1, 2]))
        assert parts[0] == [1, 2]


class TestSpans:
    def test_nesting_and_parent_links(self):
        sink = MemorySink()
        tel = Telemetry(sink)
        with tel.span("outer", id_parts=[1]) as outer:
            with tel.span("inner", id_parts=[2]) as inner:
                assert tel.current_span_id() == inner.span_id
            assert tel.current_span_id() == outer.span_id
        assert tel.current_span_id() is None
        kinds = [r["kind"] for r in sink.records]
        assert kinds == ["span-start", "span-start", "span-end", "span-end"]
        inner_start = sink.records[1]
        assert inner_start["parent"] == outer.span_id

    def test_annotate_lands_on_span_end(self):
        sink = MemorySink()
        tel = Telemetry(sink)
        with tel.span("s", id_parts=[0]) as span:
            span.annotate(rounds_run=17)
        end = sink.records[-1]
        assert end["kind"] == "span-end"
        assert end["fields"]["rounds_run"] == 17
        assert end["wall_s"] >= 0.0

    def test_error_marked_on_span_end(self):
        sink = MemorySink()
        tel = Telemetry(sink)
        with pytest.raises(RuntimeError):
            with tel.span("s", id_parts=[0]):
                raise RuntimeError("boom")
        assert sink.records[-1]["fields"]["error"] == "RuntimeError"

    def test_anonymous_ids_distinct(self):
        tel = Telemetry(MemorySink())
        assert tel.span("a").span_id != tel.span("a").span_id


class TestSampling:
    def test_stride(self):
        tel = Telemetry(MemorySink(), sample_every=3)
        hits = [t for t in range(10) if tel.sampled(t)]
        assert hits == [0, 3, 6, 9]

    def test_default_every_round(self):
        tel = Telemetry(MemorySink())
        assert all(tel.sampled(t) for t in range(5))


class TestAggregation:
    def test_counters_aggregate_even_disabled(self):
        tel = Telemetry()  # null sink
        assert not tel.enabled
        tel.count("cache.hits")
        tel.count("cache.hits", 2)
        assert tel.counters() == {"cache.hits": 3}

    def test_histograms_summarize(self):
        tel = Telemetry()
        for v in [1.0, 2.0, 3.0, 4.0]:
            tel.observe("lat", v)
        summary = tel.histogram_summary("lat")
        assert summary["count"] == 4
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["p50"] == 2.0

    def test_snapshot_and_reset(self):
        tel = Telemetry()
        tel.count("c")
        tel.observe("h", 1.5)
        snap = tel.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["histograms"]["h"]["count"] == 1
        tel.reset()
        assert tel.counters() == {}

    def test_summarize_values_empty_is_none(self):
        assert summarize_values([]) is None


class TestNullSinkOverhead:
    def test_disabled_emits_nothing(self):
        sink = MemorySink()
        tel = Telemetry()  # NULL sink
        tel.event("x", a=1)
        tel.observe("h", 1.0)
        tel.count("c")
        assert sink.records == []
        assert not tel.enabled

    def test_null_path_is_cheap_smoke(self):
        # Not a benchmark — just pins that the disabled path stays a
        # branch + counter update, with no record construction.
        import time

        tel = Telemetry()
        t0 = time.perf_counter()
        for t in range(20_000):
            if tel.enabled and tel.sampled(t):  # the engine's guard
                tel.event("engine.round", t=t)
        assert time.perf_counter() - t0 < 1.0


class TestConfigure:
    def test_configure_swaps_global(self):
        sink = MemorySink()
        tel = configure(sink, sample_every=2)
        assert get_telemetry() is tel
        assert tel.enabled
        assert tel.sample_every == 2

    def test_configure_none_disables(self):
        configure(MemorySink())
        tel = configure(None)
        assert not tel.enabled

    def test_env_disabling_values(self, monkeypatch, tmp_path):
        for off in ("", "0", "off", "OFF"):
            monkeypatch.setenv("REPRO_TELEMETRY", off)
            assert not configure_from_env().enabled

    def test_env_path_enables_jsonl(self, monkeypatch, tmp_path):
        path = tmp_path / "t.jsonl"
        monkeypatch.setenv("REPRO_TELEMETRY", str(path))
        monkeypatch.setenv("REPRO_TELEMETRY_SAMPLE", "4")
        tel = configure_from_env()
        assert tel.enabled
        assert tel.sample_every == 4

    def test_explicit_path_overrides_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TELEMETRY", "off")
        tel = configure_from_env(str(tmp_path / "cli.jsonl"))
        assert tel.enabled

    def test_unset_env_leaves_registry_alone(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        before = configure(MemorySink())
        assert configure_from_env() is before

    def test_bad_sample_env_raises(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TELEMETRY", str(tmp_path / "t.jsonl"))
        monkeypatch.setenv("REPRO_TELEMETRY_SAMPLE", "three")
        with pytest.raises(ValueError):
            configure_from_env()
