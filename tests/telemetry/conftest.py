"""Telemetry test isolation: every test gets a fresh null registry.

The registry is process-global (that is the point — the engine,
sharding and distributed layers all reach it through
``get_telemetry()``), so tests that configure a real sink must not
leak it into unrelated tests.
"""

import pytest

from repro.telemetry import configure


@pytest.fixture(autouse=True)
def _fresh_telemetry():
    configure(None)
    yield
    configure(None)
