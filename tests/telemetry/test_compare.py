"""BENCH regression analytics: pairing, thresholds, gates, CLI exits.

Synthetic trajectories are written to tmp dirs with controlled deltas
(values far above the 0.1s noise floor, so the thresholds — not
jitter — decide the outcome); the committed repo trajectories must
pass the comparator clean.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.telemetry import (
    Thresholds,
    canonical_digest,
    compare_all,
    compare_bench,
    discover_benches,
    evaluate_gates,
    load_bench,
    migrate_file,
    render_report,
    render_trends,
)
from repro.telemetry.baseline import normalize_entry, row_key
from repro.telemetry.compare import (
    KERNEL_SPEEDUP_FLOOR,
    RESILIENCE_OVERHEAD_MAX,
    SHARDING_SPEEDUP_FLOOR,
    load_benches,
    resolve_against,
)

MACHINE = {"cpus": 8, "python": "3.11.7"}


def _entry(timestamp, rows, *, telemetry=None, machine=None, meta=None):
    entry = {
        "timestamp": timestamp,
        "machine": dict(machine or MACHINE),
        "meta": meta or {},
        "rows": rows,
    }
    if telemetry is not None:
        entry["telemetry"] = telemetry
    return entry


def _write(tmp_path, name, entries):
    path = tmp_path / f"BENCH_{name}.json"
    path.write_text(json.dumps({"bench": name, "entries": entries}, indent=2))
    return path


def _row(seconds, **params):
    row = {"mode": "run", "n": 1024, "runs": 128, "cpus": 8}
    row.update(params)
    row["seconds"] = seconds
    return row


class TestCanonicalDigest:
    def test_key_order_and_rounding_are_stable(self):
        a = {"b": 0.123456789, "a": {"y": 2, "x": 1}}
        b = {"a": {"x": 1, "y": 2}, "b": 0.12345678123}
        assert json.dumps(canonical_digest(a)) == json.dumps(canonical_digest(b))

    def test_floats_rounded_to_six_significant_digits(self):
        assert canonical_digest({"v": 0.12345678}) == {"v": 0.123457}

    def test_non_finite_floats_become_none(self):
        out = canonical_digest({"a": float("nan"), "b": float("inf")})
        assert out == {"a": None, "b": None}

    def test_bools_and_ints_pass_through(self):
        out = canonical_digest({"flag": True, "count": 7, "none": None})
        assert out == {"count": 7, "flag": True, "none": None}
        assert out["flag"] is True

    def test_lists_recurse(self):
        assert canonical_digest([{"z": 1.0, "a": 2}]) == [{"a": 2, "z": 1.0}]


class TestRowKey:
    def test_measure_columns_excluded(self):
        a = _row(1.0, workers=4)
        b = _row(99.0, workers=4)
        assert row_key(a) == row_key(b)

    def test_parameter_change_changes_key(self):
        assert row_key(_row(1.0, workers=4)) != row_key(_row(1.0, workers=2))


class TestNormalizeAndMigrate:
    def test_missing_machine_and_row_cpus_backfilled(self):
        raw = {"timestamp": "t", "rows": [{"mode": "x", "seconds": 1.0}]}
        entry, changed = normalize_entry(raw)
        assert changed
        assert entry["machine"] == {"cpus": None, "python": None}
        assert entry["meta"] == {}
        # cpus stays absent when the machine context never recorded it.
        assert "cpus" not in entry["rows"][0]

    def test_row_cpus_backfilled_from_machine(self):
        raw = {
            "timestamp": "t",
            "machine": {"cpus": 4, "python": "3.11"},
            "meta": {},
            "rows": [{"mode": "x", "seconds": 1.0}],
        }
        entry, changed = normalize_entry(raw)
        assert changed
        assert entry["rows"][0]["cpus"] == 4

    def test_normal_entry_unchanged(self):
        raw = _entry("t", [_row(1.0, workers=1)])
        _entry2, changed = normalize_entry(raw)
        assert not changed

    def test_migrate_file_idempotent(self, tmp_path):
        path = _write(
            tmp_path,
            "x",
            [{"timestamp": "t", "rows": [{"mode": "a", "seconds": 1.0}]}],
        )
        assert migrate_file(path) == 1
        assert migrate_file(path) == 0
        payload = json.loads(path.read_text())
        assert payload["entries"][0]["machine"] == {"cpus": None, "python": None}

    def test_migrate_canonicalizes_telemetry(self, tmp_path):
        path = _write(
            tmp_path,
            "x",
            [_entry("t", [_row(1.0)], telemetry={"b": 0.123456789, "a": 1})],
        )
        assert migrate_file(path) == 1
        payload = json.loads(path.read_text())
        assert payload["entries"][0]["telemetry"] == {"a": 1, "b": 0.123457}


class TestResolveAgainst:
    def test_single_entry_is_a_skip(self, tmp_path):
        bench = load_bench(_write(tmp_path, "x", [_entry("t1", [_row(1.0)])]))
        assert resolve_against(bench) is None

    def test_last_skips_different_cpu_machines(self, tmp_path):
        bench = load_bench(_write(tmp_path, "x", [
            _entry("t1", [_row(1.0)]),
            _entry("t2", [_row(2.0)], machine={"cpus": 2, "python": "3.11"}),
            _entry("t3", [_row(1.1)]),
        ]))
        before, after = resolve_against(bench, "last")
        assert before.timestamp == "t1"
        assert after.timestamp == "t3"

    def test_last_requires_a_shared_row_identity(self, tmp_path):
        bench = load_bench(_write(tmp_path, "x", [
            _entry("t1", [_row(1.0, mode="other")]),
            _entry("t2", [_row(1.0)]),
        ]))
        assert resolve_against(bench, "last") is None

    def test_integer_index(self, tmp_path):
        bench = load_bench(_write(tmp_path, "x", [
            _entry("t1", [_row(1.0)]),
            _entry("t2", [_row(2.0)]),
            _entry("t3", [_row(3.0)]),
        ]))
        before, _after = resolve_against(bench, "0")
        assert before.timestamp == "t1"
        before, _after = resolve_against(bench, "-1")
        assert before.timestamp == "t2"

    def test_timestamp_prefix(self, tmp_path):
        bench = load_bench(_write(tmp_path, "x", [
            _entry("2026-07-01T00:00:00", [_row(1.0)]),
            _entry("2026-08-01T00:00:00", [_row(2.0)]),
            _entry("2026-08-08T00:00:00", [_row(3.0)]),
        ]))
        before, _after = resolve_against(bench, "2026-07")
        assert before.timestamp.startswith("2026-07")

    def test_unmatched_reference_is_a_skip(self, tmp_path):
        bench = load_bench(_write(tmp_path, "x", [
            _entry("t1", [_row(1.0)]),
            _entry("t2", [_row(2.0)]),
        ]))
        assert resolve_against(bench, "1999") is None
        assert resolve_against(bench, "99") is None


class TestSecondsRegression:
    def test_twenty_five_percent_slower_flags(self, tmp_path):
        bench = load_bench(_write(tmp_path, "x", [
            _entry("t1", [_row(10.0)]),
            _entry("t2", [_row(12.5)]),
        ]))
        report = compare_bench(bench)
        assert not report.ok
        [finding] = report.regressions
        assert finding.kind == "seconds"
        assert finding.change_pct == pytest.approx(25.0)
        assert "REGRESS" in render_report(report)

    def test_noise_floor_suppresses_tiny_absolute_jitter(self, tmp_path):
        # +100% relative but only +0.01s absolute: under the 0.1s floor.
        bench = load_bench(_write(tmp_path, "x", [
            _entry("t1", [_row(0.01)]),
            _entry("t2", [_row(0.02)]),
        ]))
        assert compare_bench(bench).ok

    def test_under_threshold_change_passes(self, tmp_path):
        bench = load_bench(_write(tmp_path, "x", [
            _entry("t1", [_row(10.0)]),
            _entry("t2", [_row(11.0)]),
        ]))
        report = compare_bench(bench)
        assert report.ok and not report.findings

    def test_improvement_reported_not_flagged(self, tmp_path):
        bench = load_bench(_write(tmp_path, "x", [
            _entry("t1", [_row(10.0)]),
            _entry("t2", [_row(5.0)]),
        ]))
        report = compare_bench(bench)
        assert report.ok
        [finding] = report.findings
        assert not finding.regressed and "improved" in finding.note

    def test_unpaired_row_is_a_skip_not_an_error(self, tmp_path):
        bench = load_bench(_write(tmp_path, "x", [
            _entry("t1", [_row(10.0, workers=1)]),
            _entry("t2", [_row(10.0, workers=1), _row(3.0, workers=4)]),
        ]))
        report = compare_bench(bench)
        assert report.ok
        assert any("workers=4" in s for s in report.skipped)

    def test_custom_thresholds(self, tmp_path):
        bench = load_bench(_write(tmp_path, "x", [
            _entry("t1", [_row(10.0)]),
            _entry("t2", [_row(11.0)]),
        ]))
        strict = Thresholds(regress_pct=5.0, noise_floor_s=0.1)
        assert not compare_bench(bench, thresholds=strict).ok


class TestDigestRegression:
    @staticmethod
    def _summary(p99):
        return {
            "count": 100, "mean": p99 / 2, "min": 0.001,
            "p50": p99 / 2, "p90": p99 * 0.9, "p99": p99, "max": p99 * 1.1,
        }

    def test_digest_only_p99_regression_flags(self, tmp_path):
        rows = [_row(10.0)]
        bench = load_bench(_write(tmp_path, "x", [
            _entry("t1", rows, telemetry={"round_seconds": self._summary(0.1)}),
            _entry("t2", rows, telemetry={"round_seconds": self._summary(0.14)}),
        ]))
        report = compare_bench(bench)
        assert not report.ok
        flagged = {f.key for f in report.regressions}
        assert "round_seconds.p99" in flagged

    def test_digest_noise_floor_suppresses_micro_jitter(self, tmp_path):
        rows = [_row(10.0)]
        bench = load_bench(_write(tmp_path, "x", [
            _entry("t1", rows, telemetry={"round_seconds": self._summary(1e-4)}),
            _entry("t2", rows, telemetry={"round_seconds": self._summary(5e-4)}),
        ]))
        assert compare_bench(bench).ok

    def test_count_growth_is_not_a_latency_regression(self, tmp_path):
        rows = [_row(10.0)]
        bench = load_bench(_write(tmp_path, "x", [
            _entry("t1", rows, telemetry={"round_seconds": dict(self._summary(0.1), count=10)}),
            _entry("t2", rows, telemetry={"round_seconds": dict(self._summary(0.1), count=1000)}),
        ]))
        assert compare_bench(bench).ok

    def test_error_counter_increase_flags(self, tmp_path):
        rows = [_row(10.0)]
        bench = load_bench(_write(tmp_path, "x", [
            _entry("t1", rows, telemetry={"counters": {"client.errors": 0}}),
            _entry("t2", rows, telemetry={"counters": {"client.errors": 3}}),
        ]))
        report = compare_bench(bench)
        assert not report.ok
        [finding] = report.regressions
        assert finding.kind == "counter"

    def test_benign_counter_increase_ignored(self, tmp_path):
        rows = [_row(10.0)]
        bench = load_bench(_write(tmp_path, "x", [
            _entry("t1", rows, telemetry={"counters": {"client.cache.hits": 5}}),
            _entry("t2", rows, telemetry={"counters": {"client.cache.hits": 50}}),
        ]))
        assert compare_bench(bench).ok

    def test_missing_baseline_digest_is_a_skip(self, tmp_path):
        rows = [_row(10.0)]
        bench = load_bench(_write(tmp_path, "x", [
            _entry("t1", rows),
            _entry("t2", rows, telemetry={"round_seconds": self._summary(0.1)}),
        ]))
        report = compare_bench(bench)
        assert report.ok
        assert any("no telemetry digest" in s for s in report.skipped)


class TestGates:
    def test_sharding_gate_passes_and_fails_on_speedup(self, tmp_path):
        def bench_with(speedup):
            rows = [dict(_row(1.0, mode="run_sharded", workers=4),
                         speedup_vs_batch=speedup)]
            return load_bench(_write(tmp_path, "sharding", [_entry("t1", rows)]))

        ok = evaluate_gates(bench_with(SHARDING_SPEEDUP_FLOOR + 0.5))
        assert [g.regressed for g in ok] == [False]
        bad = evaluate_gates(bench_with(SHARDING_SPEEDUP_FLOOR - 0.5))
        assert [g.regressed for g in bad] == [True]

    def test_sharding_gate_skipped_below_min_cpus(self, tmp_path):
        rows = [dict(_row(1.0, cpus=1), speedup_vs_batch=0.5)]
        bench = load_bench(_write(tmp_path, "sharding", [
            _entry("t1", rows, machine={"cpus": 1, "python": "3.11"}),
        ]))
        assert evaluate_gates(bench) == []

    def test_kernel_gate_skipped_without_numba_rows(self, tmp_path):
        rows = [{"rule": "cobra", "backend": "numpy", "n": 100000,
                 "runs": 32, "cpus": 8, "seconds_per_round": 0.5,
                 "speedup_vs_numpy": 1.0}]
        bench = load_bench(_write(tmp_path, "kernels", [_entry("t1", rows)]))
        assert evaluate_gates(bench) == []

    def test_kernel_gate_fails_below_floor(self, tmp_path):
        rows = [{"rule": "cobra", "backend": "numba", "n": 100000,
                 "runs": 32, "cpus": 8, "seconds_per_round": 0.1,
                 "speedup_vs_numpy": KERNEL_SPEEDUP_FLOOR / 2}]
        bench = load_bench(_write(tmp_path, "kernels", [_entry("t1", rows)]))
        [gate] = evaluate_gates(bench)
        assert gate.regressed

    def test_resilience_gate_reads_meta_overhead(self, tmp_path):
        def bench_with(overhead):
            return load_bench(_write(tmp_path, "resilience", [
                _entry("t1", [_row(1.0)],
                       meta={"overhead_fraction": overhead}),
            ]))

        [ok] = evaluate_gates(bench_with(RESILIENCE_OVERHEAD_MAX / 2))
        assert not ok.regressed
        [bad] = evaluate_gates(bench_with(RESILIENCE_OVERHEAD_MAX * 2))
        assert bad.regressed

    def test_unknown_bench_has_no_gates(self, tmp_path):
        bench = load_bench(_write(tmp_path, "adversary", [_entry("t1", [_row(1.0)])]))
        assert evaluate_gates(bench) == []


class TestCommittedTrajectories:
    def test_repo_bench_files_pass_clean(self):
        paths = discover_benches(".")
        if not paths:
            pytest.skip("no BENCH_*.json at the repo root")
        report = compare_all(paths)
        assert report.ok, render_report(report)

    def test_repo_trends_render(self):
        paths = discover_benches(".")
        if not paths:
            pytest.skip("no BENCH_*.json at the repo root")
        text = render_trends(load_benches(paths))
        for path in paths:
            assert path.name in text


class TestCli:
    def test_compare_exits_nonzero_on_regression(self, tmp_path, capsys):
        _write(tmp_path, "x", [
            _entry("t1", [_row(10.0)]),
            _entry("t2", [_row(12.5)]),
        ])
        code = cli_main(
            ["bench", "compare", "--root", str(tmp_path),
             "--fail-on-regress", "20"]
        )
        assert code == 1
        assert "REGRESS" in capsys.readouterr().out

    def test_digest_only_regression_exits_nonzero(self, tmp_path, capsys):
        # Headline seconds identical; only the p99 round latency moved.
        summary = TestDigestRegression._summary
        _write(tmp_path, "x", [
            _entry("t1", [_row(10.0)],
                   telemetry={"round_seconds": summary(0.1)}),
            _entry("t2", [_row(10.0)],
                   telemetry={"round_seconds": summary(0.14)}),
        ])
        code = cli_main(["bench", "compare", "--root", str(tmp_path)])
        assert code == 1
        assert "round_seconds.p99" in capsys.readouterr().out

    def test_compare_exits_zero_when_clean(self, tmp_path, capsys):
        _write(tmp_path, "x", [
            _entry("t1", [_row(10.0)]),
            _entry("t2", [_row(10.1)]),
        ])
        assert cli_main(["bench", "compare", "--root", str(tmp_path)]) == 0

    def test_fail_on_regress_tightens_threshold(self, tmp_path):
        _write(tmp_path, "x", [
            _entry("t1", [_row(10.0)]),
            _entry("t2", [_row(11.0)]),  # +10%: default passes
        ])
        assert cli_main(["bench", "compare", "--root", str(tmp_path)]) == 0
        assert cli_main(
            ["bench", "compare", "--root", str(tmp_path),
             "--fail-on-regress", "5"]
        ) == 1

    def test_named_trajectory_selection(self, tmp_path):
        _write(tmp_path, "x", [_entry("t1", [_row(10.0)])])
        assert cli_main(["bench", "compare", "--root", str(tmp_path), "x"]) == 0
        with pytest.raises(SystemExit):
            cli_main(["bench", "compare", "--root", str(tmp_path), "nope"])

    def test_migrate_and_report(self, tmp_path, capsys):
        _write(tmp_path, "x", [
            {"timestamp": "t1", "rows": [{"mode": "a", "seconds": 1.0}]},
        ])
        assert cli_main(["bench", "migrate", "--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 entry migrated" in out
        assert cli_main(["bench", "report", "--root", str(tmp_path)]) == 0
        assert "BENCH_x.json" in capsys.readouterr().out

    def test_empty_root_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["bench", "compare", "--root", str(tmp_path)])
