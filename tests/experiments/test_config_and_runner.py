"""Config and runner plumbing tests."""

import pytest

from repro.experiments import Check, ExperimentConfig, ExperimentResult, Table
from repro.experiments.runner import measure_cover
from repro.graphs import complete_graph


class TestConfig:
    def test_defaults(self):
        c = ExperimentConfig()
        assert c.scale == "quick"
        assert c.n_workers == 1

    def test_scale_picks(self):
        c = ExperimentConfig(scale="smoke")
        assert c.runs(1, 2, 3) == 1
        assert c.pick("a", "b", "c") == "a"
        assert c.with_scale("full").runs(1, 2, 3) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scale="huge")
        with pytest.raises(ValueError):
            ExperimentConfig(n_workers=0)


class TestExperimentResult:
    def test_all_passed(self):
        r = ExperimentResult(
            experiment_id="EX",
            title="t",
            checks=[Check("a", True, "ok"), Check("b", True, "ok")],
        )
        assert r.all_passed
        r.checks.append(Check("c", False, "bad"))
        assert not r.all_passed

    def test_render_contains_everything(self):
        t = Table(title="data")
        t.add_row(x=1)
        r = ExperimentResult(
            experiment_id="EX",
            title="demo",
            tables=[t],
            checks=[Check("crit", True, "fine")],
            notes=["a note"],
        )
        out = r.render()
        assert "EX: demo" in out
        assert "== data ==" in out
        assert "[PASS] crit" in out
        assert "a note" in out

    def test_check_str(self):
        assert "[FAIL] x: why" in str(Check("x", False, "why"))


class TestMeasureCover:
    def test_basic(self):
        meas = measure_cover(complete_graph(8), runs=20, seed=1)
        assert meas.n == 8
        assert meas.runs == 20
        assert meas.mean.value >= 3.0  # log2(8)
        assert meas.whp.value >= meas.mean.value - 1e-9

    def test_deterministic(self):
        a = measure_cover(complete_graph(8), runs=10, seed=5)
        b = measure_cover(complete_graph(8), runs=10, seed=5)
        assert a.mean.value == b.mean.value
