"""Table rendering tests."""

from repro.experiments import Table


class TestTable:
    def test_columns_inferred_in_order(self):
        t = Table(title="t")
        t.add_row(a=1, b=2)
        t.add_row(b=3, c=4)
        assert t.columns == ["a", "b", "c"]

    def test_render_alignment(self):
        t = Table(title="demo")
        t.add_row(name="x", value=1.5)
        t.add_row(name="longer", value=22)
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "== demo =="
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_missing_cells_render_dash(self):
        t = Table(title="t")
        t.add_row(a=1)
        t.add_row(b=2)
        out = t.render()
        assert "-" in out.splitlines()[-1]

    def test_float_formatting(self):
        t = Table(title="t")
        t.add_row(x=0.000123, y=1234567.0, z=3.14159, w=True, v=0.0)
        body = t.render().splitlines()[-1]
        assert "0.000123" in body
        assert "1.23e+06" in body
        assert "3.142" in body
        assert "yes" in body

    def test_empty_table(self):
        assert "(empty)" in Table(title="nothing").render()

    def test_column_extraction(self):
        t = Table(title="t")
        t.add_row(a=1, b=2)
        t.add_row(a=3)
        assert t.column("a") == [1, 3]
        assert t.column("b") == [2, None]

    def test_csv(self):
        t = Table(title="t")
        t.add_row(name="a,b", v=1)
        csv = t.to_csv()
        assert csv.splitlines()[0] == "name,v"
        assert '"a,b"' in csv
