"""Consistency between the registry, the report claims, and the benches."""

from pathlib import Path

from repro.analysis import PAPER_CLAIMS
from repro.experiments import EXPERIMENTS

BENCH_DIR = Path(__file__).resolve().parent.parent.parent / "benchmarks"


def test_every_experiment_has_a_paper_claim():
    assert set(PAPER_CLAIMS) == set(EXPERIMENTS)


def test_every_experiment_has_a_bench_file():
    for experiment_id in EXPERIMENTS:
        num = int(experiment_id[1:])
        bench = BENCH_DIR / f"bench_e{num:02d}.py"
        assert bench.exists(), f"missing {bench.name}"


def test_bench_files_reference_their_experiment():
    for experiment_id in EXPERIMENTS:
        num = int(experiment_id[1:])
        text = (BENCH_DIR / f"bench_e{num:02d}.py").read_text()
        assert f'"{experiment_id}"' in text or f"'{experiment_id}'" in text


def test_experiment_ids_match_module_constants():
    for experiment_id, spec in EXPERIMENTS.items():
        assert spec.experiment_id == experiment_id
