"""Registry tests + the smoke-scale integration run of every experiment.

These are the repository's end-to-end tests: each E-module must run at
smoke scale, produce tables, and pass all of its shape checks.
"""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentConfig,
    get_experiment,
    run_experiment,
)

SMOKE = ExperimentConfig(scale="smoke", seed=20170724)


class TestRegistry:
    def test_all_seventeen_registered(self):
        # E1..E12 reproduce the paper; E13-E17 are extensions
        # (DESIGN.md ablations, the dynamic-graph suite, and the
        # adversarial-dynamics suite).
        assert len(EXPERIMENTS) == 17
        assert sorted(EXPERIMENTS) == sorted(f"E{i}" for i in range(1, 18))

    def test_lookup_case_insensitive(self):
        assert get_experiment("e4").experiment_id == "E4"

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="known"):
            get_experiment("E99")

    def test_specs_have_anchors(self):
        for spec in EXPERIMENTS.values():
            assert spec.paper_anchor
            assert spec.title


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS, key=lambda k: int(k[1:])))
def test_experiment_smoke_run_passes(experiment_id):
    """Every experiment runs at smoke scale with all shape checks green."""
    result = run_experiment(experiment_id, SMOKE)
    assert result.experiment_id == experiment_id
    assert result.tables, "experiment produced no tables"
    assert all(t.rows for t in result.tables), "an output table is empty"
    failing = [c for c in result.checks if not c.passed]
    assert not failing, f"failing checks: {[str(c) for c in failing]}"


def test_experiment_deterministic():
    """Same config => identical tables (the seeding contract)."""
    a = run_experiment("E1", SMOKE)
    b = run_experiment("E1", SMOKE)
    assert a.tables[0].rows == b.tables[0].rows
