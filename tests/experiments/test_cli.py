"""CLI tests."""

import pytest

from repro.cli import _graph_from_spec, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "E1"])
        assert args.experiment == "E1"
        assert args.scale == "quick"

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "all", "--scale", "smoke", "--seed", "7"]
        )
        assert args.scale == "smoke"
        assert args.seed == 7


class TestGraphSpecs:
    @pytest.mark.parametrize(
        "spec,n",
        [
            ("cycle-12", 12),
            ("path-5", 5),
            ("star-6", 6),
            ("complete-7", 7),
            ("hypercube-4", 16),
            ("torus-3x4", 12),
            ("margulis-4", 16),
            ("rreg-3-16", 16),
        ],
    )
    def test_specs(self, spec, n):
        assert _graph_from_spec(spec).n == n

    def test_unknown_spec(self):
        with pytest.raises(SystemExit):
            _graph_from_spec("klein-bottle-9")


class TestMain:
    def test_list_exits_zero(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E12" in out

    def test_run_smoke(self, capsys):
        assert main(["run", "E4", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_graph_info(self, capsys):
        assert main(["graph-info", "petersen"]) == 0 if False else True
        # petersen isn't a spec; use cycle instead
        assert main(["graph-info", "cycle-9"]) == 0
        out = capsys.readouterr().out
        assert "diameter=4" in out
        assert "lambda=" in out


class TestCoverCommand:
    def test_cover_named_graph(self, capsys):
        assert main(["cover", "complete-16", "--runs", "10"]) == 0
        out = capsys.readouterr().out
        assert "mean cover time" in out
        assert "Theorem 1.1 bound" in out

    def test_cover_auto_lazy_on_bipartite(self, capsys):
        assert main(["cover", "cycle-8", "--runs", "5"]) == 0
        out = capsys.readouterr().out
        assert "enabling the lazy variant" in out

    def test_cover_edge_list_file(self, tmp_path, capsys):
        path = tmp_path / "net.edges"
        path.write_text("0 1\n1 2\n2 0\n")
        assert main(["cover", str(path), "--runs", "5"]) == 0
        assert "mean cover time" in capsys.readouterr().out


class TestDynamicsCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["dynamics"])
        assert args.family == "expander"
        assert args.kind == "rewiring"
        assert args.rate == 0.1
        assert args.process == "cobra"

    def test_cobra_rewiring_runs(self, capsys):
        assert (
            main(
                ["dynamics", "--family", "cycle", "--n", "21", "--rate", "0.3",
                 "--runs", "5", "--seed", "1"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "dynamic COBRA" in out
        assert "mean cover time" in out

    def test_bips_churn_runs(self, capsys):
        assert (
            main(
                ["dynamics", "--family", "complete", "--n", "12", "--kind",
                 "churn", "--rate", "0.2", "--process", "bips", "--runs", "4",
                 "--seed", "2"]
            )
            == 0
        )
        assert "mean infection time" in capsys.readouterr().out

    def test_output_deterministic(self, capsys):
        argv = ["dynamics", "--family", "expander", "--n", "32", "--rate",
                "0.1", "--runs", "5", "--seed", "7"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_bad_rate_rejected(self):
        with pytest.raises(SystemExit):
            main(["dynamics", "--rate", "1.5", "--runs", "2"])


class TestReportCommand:
    def test_report_writes_file(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(
            ["report", "--scale", "smoke", "--output", "OUT.md"]
        ) == 0
        text = (tmp_path / "OUT.md").read_text()
        assert "# EXPERIMENTS" in text
        assert "## E1" in text and "## E16" in text


class TestRunAll:
    def test_run_all_smoke(self, capsys):
        # The full-suite CLI path: all 16 experiments at smoke scale.
        assert main(["run", "all", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 17):
            assert f"E{i} finished" in out
        assert "FAIL" not in out
