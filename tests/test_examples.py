"""Smoke tests: every example script runs to completion as a subprocess.

Examples are the README's promises; these tests keep them executable.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    assert len(EXAMPLES) >= 4, EXAMPLES
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_quickstart_mentions_bounds():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert "SPAA'17" in proc.stdout
    assert "lower bound" in proc.stdout
