"""Documentation hygiene: every public item carries a docstring.

Deliverable (e) requires doc comments on every public item; this
meta-test enforces it mechanically across the whole package.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_DUNDER = True


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        yield importlib.import_module(info.name)


MODULES = list(_public_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for meth_name, meth in inspect.getmembers(obj, inspect.isfunction):
                if meth_name.startswith("_"):
                    continue
                if meth.__qualname__.split(".")[0] != obj.__name__:
                    continue  # inherited
                if not (meth.__doc__ and meth.__doc__.strip()):
                    undocumented.append(f"{name}.{meth_name}")
    assert not undocumented, f"{module.__name__}: {undocumented}"


def test_top_level_reexports_complete():
    # Everything promised by repro.__all__ resolves and is documented
    # somewhere down the import chain.
    for name in repro.__all__:
        assert getattr(repro, name) is not None
