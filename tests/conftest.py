"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    hypercube_graph,
    path_graph,
    petersen_graph,
    random_regular_graph,
    star_graph,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def path5() -> Graph:
    return path_graph(5)


@pytest.fixture
def cycle6() -> Graph:
    return cycle_graph(6)


@pytest.fixture
def star7() -> Graph:
    return star_graph(7)


@pytest.fixture
def k5() -> Graph:
    return complete_graph(5)


@pytest.fixture
def petersen() -> Graph:
    return petersen_graph()


@pytest.fixture
def q4() -> Graph:
    return hypercube_graph(4)


@pytest.fixture
def expander32() -> Graph:
    return random_regular_graph(32, 3, rng=777)
