"""Public API surface tests: the names README/docs promise must exist."""

import repro


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__

    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_snippet_runs(self):
        # The exact snippet from the package docstring.
        import numpy as np

        g = repro.hypercube_graph(4)
        times = repro.cover_time_samples(
            g, start=0, runs=10, lazy=True, rng=np.random.default_rng(1)
        )
        assert times.shape == (10,)
        assert times.mean() >= 4.0  # log2(16)

    def test_subpackages_importable(self):
        import repro.adversary
        import repro.baselines
        import repro.core
        import repro.distributed
        import repro.dynamics
        import repro.engine
        import repro.experiments
        import repro.graphs
        import repro.kernels
        import repro.parallel
        import repro.resilience
        import repro.stats
        import repro.telemetry
        import repro.theory

        for mod in (
            repro.adversary,
            repro.baselines,
            repro.core,
            repro.distributed,
            repro.dynamics,
            repro.engine,
            repro.experiments,
            repro.graphs,
            repro.kernels,
            repro.parallel,
            repro.resilience,
            repro.stats,
            repro.telemetry,
            repro.theory,
        ):
            assert mod.__all__
