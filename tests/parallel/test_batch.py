"""Batch-planning tests."""

import numpy as np
import pytest

from repro.parallel import plan_batches, run_batched


class TestPlanBatches:
    def test_splits_cover_total(self):
        plan = plan_batches(1000, 64, max_batch=128)
        assert sum(plan) == 1000
        assert max(plan) <= 128

    def test_budget_respected(self):
        # 4 arrays * 1 MiB vertices -> each run costs 4 MiB; 8 MiB
        # budget allows 2 runs per batch.
        plan = plan_batches(5, 1024 * 1024, budget_bytes=8 * 1024 * 1024)
        assert plan == [2, 2, 1]

    def test_minimum_one_per_batch(self):
        plan = plan_batches(3, 10**9, budget_bytes=1)
        assert plan == [1, 1, 1]

    def test_single_batch_when_small(self):
        assert plan_batches(10, 100) == [10]

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_batches(0, 10)
        with pytest.raises(ValueError):
            plan_batches(10, 0)


class TestRunBatched:
    def test_concatenates(self):
        calls = []

        def sampler(b: int) -> np.ndarray:
            calls.append(b)
            return np.full(b, len(calls))

        out = run_batched(sampler, 10, 4, max_batch=4)
        assert out.shape == (10,)
        assert calls == [4, 4, 2]
        assert out.tolist() == [1] * 4 + [2] * 4 + [3] * 2
