"""Process-pool tests."""

import numpy as np
import pytest

from repro.parallel import default_workers, parallel_map


def _square(x: int) -> int:
    return x * x


def _sample_mean(seed_entropy) -> float:
    rng = np.random.default_rng(seed_entropy)
    return float(rng.normal(size=100).mean())


class TestParallelMap:
    def test_serial_matches_input_order(self):
        out = parallel_map(_square, list(range(10)), n_workers=1)
        assert out == [x * x for x in range(10)]

    def test_parallel_matches_serial(self):
        items = list(range(23))
        serial = parallel_map(_square, items, n_workers=1)
        parallel = parallel_map(_square, items, n_workers=2)
        assert serial == parallel

    def test_seeded_work_identical_across_worker_counts(self):
        # The determinism contract: spawned seeds make results identical
        # regardless of parallelism.
        from repro.stats import spawn_seeds

        seeds = [s.entropy for s in spawn_seeds(7, 8)]
        serial = parallel_map(_sample_mean, seeds, n_workers=1)
        parallel = parallel_map(_sample_mean, seeds, n_workers=3)
        assert serial == parallel

    def test_empty(self):
        assert parallel_map(_square, []) == []

    def test_single_item_stays_serial(self):
        assert parallel_map(_square, [3], n_workers=8) == [9]

    def test_chunk_size_respected(self):
        out = parallel_map(_square, list(range(50)), n_workers=2, chunk_size=7)
        assert out == [x * x for x in range(50)]


class TestDefaultWorkers:
    def test_at_least_one(self):
        assert default_workers() >= 1

    def test_capped(self):
        assert default_workers() <= 8


def _explode(x: int) -> int:
    if x == 3:
        raise ValueError("injected failure")
    return x


class TestFailurePropagation:
    def test_serial_worker_exception_propagates(self):
        import pytest

        with pytest.raises(ValueError, match="injected"):
            parallel_map(_explode, [1, 2, 3], n_workers=1)

    def test_parallel_worker_exception_propagates(self):
        import pytest

        with pytest.raises(ValueError, match="injected"):
            parallel_map(_explode, [1, 2, 3, 4], n_workers=2)


class TestPoolChunkSize:
    def test_ceil_never_exceeds_four_chunks_per_worker(self):
        from math import ceil

        from repro.parallel import pool_chunk_size

        for n_items in (1, 5, 6, 23, 33, 100, 1000):
            for workers in (1, 2, 4, 8):
                chunk = pool_chunk_size(n_items, workers)
                assert chunk >= 1
                n_chunks = ceil(n_items / chunk)
                assert n_chunks <= workers * 4

    def test_small_task_counts_not_floored_to_starvation(self):
        from repro.parallel import pool_chunk_size

        # Historical floor division: 33 items, 2 workers -> 33 // 8 = 4
        # -> 9 chunks (one worker drags a 9th chunk alone).  Ceil gives
        # 5 -> 7 chunks.
        assert pool_chunk_size(33, 2) == 5
        # Fewer items than 4 * workers: one item per chunk.
        assert pool_chunk_size(6, 4) == 1

    def test_validation(self):
        import pytest

        from repro.parallel import pool_chunk_size

        with pytest.raises(ValueError):
            pool_chunk_size(0, 2)
        with pytest.raises(ValueError):
            pool_chunk_size(2, 0)


class TestWorkersEnvVar:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3

    def test_env_override_allows_more_than_cap(self, monkeypatch):
        # The min(cpus, 8) cap is the *fallback*; an explicit env value
        # wins even above it.
        monkeypatch.setenv("REPRO_WORKERS", "12")
        assert default_workers() == 12

    def test_env_invalid_raises(self, monkeypatch):
        import pytest

        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            default_workers()
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            default_workers()

    def test_env_empty_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "")
        assert 1 <= default_workers() <= 8
