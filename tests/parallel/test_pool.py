"""Process-pool tests."""

import numpy as np
import pytest

from repro.parallel import default_workers, parallel_map


def _square(x: int) -> int:
    return x * x


def _sample_mean(seed_entropy) -> float:
    rng = np.random.default_rng(seed_entropy)
    return float(rng.normal(size=100).mean())


class TestParallelMap:
    def test_serial_matches_input_order(self):
        out = parallel_map(_square, list(range(10)), n_workers=1)
        assert out == [x * x for x in range(10)]

    def test_parallel_matches_serial(self):
        items = list(range(23))
        serial = parallel_map(_square, items, n_workers=1)
        parallel = parallel_map(_square, items, n_workers=2)
        assert serial == parallel

    def test_seeded_work_identical_across_worker_counts(self):
        # The determinism contract: spawned seeds make results identical
        # regardless of parallelism.
        from repro.stats import spawn_seeds

        seeds = [s.entropy for s in spawn_seeds(7, 8)]
        serial = parallel_map(_sample_mean, seeds, n_workers=1)
        parallel = parallel_map(_sample_mean, seeds, n_workers=3)
        assert serial == parallel

    def test_empty(self):
        assert parallel_map(_square, []) == []

    def test_single_item_stays_serial(self):
        assert parallel_map(_square, [3], n_workers=8) == [9]

    def test_chunk_size_respected(self):
        out = parallel_map(_square, list(range(50)), n_workers=2, chunk_size=7)
        assert out == [x * x for x in range(50)]


class TestDefaultWorkers:
    def test_at_least_one(self):
        assert default_workers() >= 1

    def test_capped(self):
        assert default_workers() <= 8


def _explode(x: int) -> int:
    if x == 3:
        raise ValueError("injected failure")
    return x


class TestFailurePropagation:
    def test_serial_worker_exception_propagates(self):
        import pytest

        with pytest.raises(ValueError, match="injected"):
            parallel_map(_explode, [1, 2, 3], n_workers=1)

    def test_parallel_worker_exception_propagates(self):
        import pytest

        with pytest.raises(ValueError, match="injected"):
            parallel_map(_explode, [1, 2, 3, 4], n_workers=2)
