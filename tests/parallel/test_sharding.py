"""Sharded engine execution tests.

The contract under test: ``run_sharded`` output is bit-for-bit
identical at any worker count (the shard plan and the spawned seeds
never depend on ``workers``), and equals the serial shard-by-shard
``engine.run`` reference under the same spawning discipline — for
cover-type (COBRA), infection-type (BIPS) and position-state (walks)
rules, on static and time-evolving topologies.
"""

import numpy as np
import pytest

from repro.core.branching import make_policy
from repro.dynamics import (
    RewiringSequence,
    dynamic_cover_time_batch,
    dynamic_infection_time_batch,
)
from repro.engine import BipsRule, CobraRule, FloodingRule, SpreadEngine, WalkRule
from repro.graphs import cycle_graph, random_regular_graph
from repro.parallel import (
    ShardTask,
    execute_shards,
    merge_shard_results,
    plan_shards,
    run_sharded,
)
from repro.stats import spawn_seeds

RUNS = 40
MAX_SHARD = 8  # force several shards even at tiny run counts


def _graph():
    return random_regular_graph(24, 4, rng=11)


def _sequence(graph):
    return RewiringSequence(graph, 2, seed=77)


def _rules():
    return {
        "cobra": CobraRule(make_policy(2)),
        "bips": BipsRule(make_policy(2), source=0),
        "walk": WalkRule(k=2),
    }


def _initial_state(rule, n):
    if isinstance(rule, WalkRule):
        return np.zeros((RUNS, rule.k), dtype=np.int64)
    state = np.zeros((RUNS, n), dtype=bool)
    state[:, 0] = True
    return state


def _run(rule, topology, workers):
    engine = SpreadEngine(rule, topology)
    state = _initial_state(rule, topology.n)
    return engine.run_sharded(
        state, 123, workers=workers, track_hits=True, max_shard=MAX_SHARD
    )


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("name", ["cobra", "bips", "walk"])
    @pytest.mark.parametrize("dynamic", [False, True], ids=["static", "dynamic"])
    def test_identical_across_worker_counts(self, name, dynamic):
        graph = _graph()
        topology = _sequence(graph) if dynamic else graph
        rule = _rules()[name]
        reference = _run(rule, topology, workers=1)
        for workers in (2, 4):
            got = _run(rule, topology, workers=workers)
            assert got.rounds_run == reference.rounds_run
            assert np.array_equal(got.finish_times, reference.finish_times)
            assert np.array_equal(got.hit_times, reference.hit_times)
            assert np.array_equal(got.final_state, reference.final_state)

    @pytest.mark.parametrize("name", ["cobra", "bips", "walk"])
    def test_matches_serial_run_batch_reference(self, name):
        # Shard-by-shard engine.run with the same spawned seeds is the
        # definitional serial reference; run_sharded must equal it.
        graph = _graph()
        rule = _rules()[name]
        engine = SpreadEngine(rule, graph)
        state = _initial_state(rule, graph.n)
        sharded = _run(rule, graph, workers=2)

        sizes = plan_shards(rule, RUNS, graph.n, max_shard=MAX_SHARD)
        seeds = spawn_seeds(np.random.SeedSequence(123), len(sizes))
        times, lo = [], 0
        for size, seed in zip(sizes, seeds):
            res = engine.run(
                state[lo : lo + size], np.random.default_rng(seed), track_hits=True
            )
            times.append(res.finish_times)
            lo += size
        assert np.array_equal(np.concatenate(times), sharded.finish_times)


class TestCompletionSchedule:
    @pytest.mark.parametrize("name", ["cobra", "bips", "walk"])
    def test_completion_schedule_identical_to_static(self, name):
        # imap_unordered dispatch re-keys results by shard index, so
        # the two schedules must be observably identical.
        graph = _graph()
        rule = _rules()[name]
        engine = SpreadEngine(rule, graph)
        state = _initial_state(rule, graph.n)
        static = engine.run_sharded(
            state, 123, workers=1, track_hits=True, max_shard=MAX_SHARD
        )
        stolen = engine.run_sharded(
            state,
            123,
            workers=3,
            track_hits=True,
            max_shard=MAX_SHARD,
            schedule="completion",
        )
        assert stolen.rounds_run == static.rounds_run
        assert np.array_equal(stolen.finish_times, static.finish_times)
        assert np.array_equal(stolen.hit_times, static.hit_times)
        assert np.array_equal(stolen.final_state, static.final_state)


class TestTrajectoryMerging:
    def test_recorded_series_identical_and_padded(self):
        graph = _graph()
        rule = CobraRule(make_policy(2))
        engine = SpreadEngine(rule, graph)
        state = np.zeros((RUNS, graph.n), dtype=bool)
        state[:, 0] = True
        serial = engine.run_sharded(
            state, 5, workers=1, record_sizes=True, record_visited=True,
            max_shard=MAX_SHARD,
        )
        parallel = engine.run_sharded(
            state, 5, workers=3, record_sizes=True, record_visited=True,
            max_shard=MAX_SHARD,
        )
        assert serial.sizes.shape == (RUNS, serial.rounds_run + 1)
        assert np.array_equal(serial.sizes, parallel.sizes)
        assert np.array_equal(serial.visited_counts, parallel.visited_counts)
        # Terminal-value padding: every covered run's visited count ends
        # at n and is monotone along the common axis.
        assert np.all(serial.visited_counts[:, -1] == graph.n)
        assert np.all(np.diff(serial.visited_counts, axis=1) >= 0)


class TestDynamicSharding:
    @pytest.mark.parametrize(
        "sampler", [dynamic_cover_time_batch, dynamic_infection_time_batch]
    )
    def test_factory_samples_identical_across_worker_counts(self, sampler):
        base = _graph()

        def factory(topology_seed):
            return RewiringSequence(base, 2, seed=topology_seed)

        reference = sampler(factory, RUNS, seed=3, workers=1)
        for workers in (2, 4):
            assert np.array_equal(sampler(factory, RUNS, seed=3, workers=workers), reference)

    def test_shared_sequence_instance_is_quenched(self):
        # A concrete GraphSequence (not a factory) is shared by every
        # shard: same realisation, still deterministic across counts.
        seq = _sequence(_graph())
        a = dynamic_cover_time_batch(seq, RUNS, seed=3, workers=1)
        b = dynamic_cover_time_batch(seq, RUNS, seed=3, workers=2)
        assert np.array_equal(a, b)


class TestPlanAndErrors:
    def test_plan_is_pure_and_covers_runs(self):
        rule = CobraRule(make_policy(2))
        plan = plan_shards(rule, 1000, 64, max_shard=128)
        assert plan == plan_shards(rule, 1000, 64, max_shard=128)
        assert sum(plan) == 1000
        assert max(plan) <= 128

    def test_bit_packed_rules_rejected(self):
        graph = cycle_graph(9)
        rule = FloodingRule(runs=8)
        state = rule.pack(np.eye(8, 9, dtype=bool))
        with pytest.raises(ValueError, match="sharded"):
            run_sharded(rule, graph, "all-vertices", state, 1)

    def test_execute_shards_empty(self):
        assert execute_shards([], workers=4) == []

    def test_merge_of_nothing_is_wellformed_empty(self):
        res = merge_shard_results([])
        assert res.finish_times.shape == (0,)
        assert res.rounds_run == 0
        assert res.final_state.shape[0] == 0
        assert res.all_finished  # vacuously: no capped runs

    def test_zero_runs_plan_and_run(self):
        rule = CobraRule(make_policy(2))
        assert plan_shards(rule, 0, 64) == []
        graph = _graph()
        state = np.zeros((0, graph.n), dtype=bool)
        res = run_sharded(
            rule, graph, "all-vertices", state, 1, track_hits=True
        )
        assert res.finish_times.shape == (0,)
        assert res.final_state.shape == (0, graph.n)
        assert res.hit_times.shape == (0, graph.n)
        assert res.rounds_run == 0

    def test_fewer_shards_than_workers(self):
        # A 2-shard plan run under 8 workers must clamp the pool and
        # still merge a complete, reference-identical result.
        graph = _graph()
        rule = _rules()["cobra"]
        engine = SpreadEngine(rule, graph)
        state = _initial_state(rule, graph.n)
        reference = engine.run_sharded(state, 123, workers=1, max_shard=20)
        got = engine.run_sharded(state, 123, workers=8, max_shard=20)
        assert np.array_equal(got.finish_times, reference.finish_times)

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="schedule"):
            execute_shards([], workers=2, schedule="sorted")

    def test_single_task_serial_even_with_many_workers(self):
        # min(workers, tasks) == 1 must not spin up a pool: verified by
        # determinism (and implicitly by not forking for tiny jobs).
        graph = cycle_graph(9)
        rule = CobraRule(make_policy(2), lazy=True)
        state = np.zeros((4, 9), dtype=bool)
        state[:, 0] = True
        task = ShardTask(
            rule=rule,
            topology=graph,
            completion=SpreadEngine(rule, graph).completion,
            state=state,
            seed=np.random.SeedSequence(1),
        )
        (res,) = execute_shards([task], workers=8)
        assert res.finish_times.shape == (4,)
