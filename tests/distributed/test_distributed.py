"""End-to-end distributed execution over a localhost broker.

The acceptance contract under test: ``run_distributed`` through a real
TCP broker with real worker processes returns results bit-for-bit
identical to ``SpreadEngine.run_sharded(workers=1)`` — for COBRA, BIPS
and walk rules, on static and dynamic topologies, with recorded
trajectories, and *including* the run where a worker stalls mid-shard
and the broker requeues its lease onto the survivors.
"""

import multiprocessing as mp
import socket
import threading
import time

import numpy as np
import pytest

from repro.core import cover_time_samples
from repro.core.branching import make_policy
from repro.distributed import (
    Broker,
    DistributedError,
    ResultCache,
    broker_status,
    execute_shards_remote,
)
from repro.distributed.wire import parse_endpoint, recv_frame, send_frame
from repro.distributed.worker import run_worker
from repro.dynamics import (
    RewiringSequence,
    dynamic_cover_time_batch,
    dynamic_infection_time_batch,
)
from repro.engine import BipsRule, CobraRule, SpreadEngine, WalkRule
from repro.graphs import random_regular_graph
from repro.parallel import ShardTask

RUNS = 40
MAX_SHARD = 8  # several shards even at tiny run counts
_CTX = mp.get_context("fork")


def _graph():
    return random_regular_graph(24, 4, rng=11)


def _rules():
    return {
        "cobra": CobraRule(make_policy(2)),
        "bips": BipsRule(make_policy(2), source=0),
        "walk": WalkRule(k=2),
    }


def _initial_state(rule, n):
    if isinstance(rule, WalkRule):
        return np.zeros((RUNS, rule.k), dtype=np.int64)
    state = np.zeros((RUNS, n), dtype=bool)
    state[:, 0] = True
    return state


def _spawn_workers(address, count, **kw):
    kw.setdefault("poll_interval", 0.05)
    procs = [
        _CTX.Process(
            target=run_worker, args=(address,), kwargs=kw, daemon=True
        )
        for _ in range(count)
    ]
    for proc in procs:
        proc.start()
    return procs


def _reap(procs):
    for proc in procs:
        proc.terminate()
    for proc in procs:
        proc.join(timeout=5)


@pytest.fixture(scope="module")
def fleet():
    """One broker plus two worker processes, shared by the matrix tests."""
    with Broker(lease_timeout=15.0) as broker:
        procs = _spawn_workers(broker.address, 2)
        try:
            yield broker
        finally:
            _reap(procs)


class TestBitIdentity:
    @pytest.mark.parametrize("name", ["cobra", "bips", "walk"])
    @pytest.mark.parametrize("dynamic", [False, True], ids=["static", "dynamic"])
    def test_matches_run_sharded_serial(self, fleet, name, dynamic):
        graph = _graph()
        topology = RewiringSequence(graph, 2, seed=77) if dynamic else graph
        rule = _rules()[name]
        engine = SpreadEngine(rule, topology)
        state = _initial_state(rule, graph.n)
        reference = engine.run_sharded(
            state, 123, workers=1, track_hits=True, max_shard=MAX_SHARD
        )
        got = engine.run_distributed(
            state,
            123,
            endpoint=fleet.address,
            track_hits=True,
            max_shard=MAX_SHARD,
            cache=None,
        )
        assert got.rounds_run == reference.rounds_run
        assert np.array_equal(got.finish_times, reference.finish_times)
        assert np.array_equal(got.hit_times, reference.hit_times)
        assert np.array_equal(got.final_state, reference.final_state)

    def test_recorded_trajectories_identical(self, fleet):
        graph = _graph()
        engine = SpreadEngine(CobraRule(make_policy(2)), graph)
        state = _initial_state(CobraRule(make_policy(2)), graph.n)
        reference = engine.run_sharded(
            state, 5, workers=1, record_sizes=True, record_visited=True,
            max_shard=MAX_SHARD,
        )
        got = engine.run_distributed(
            state, 5, endpoint=fleet.address, record_sizes=True,
            record_visited=True, max_shard=MAX_SHARD, cache=None,
        )
        assert np.array_equal(got.sizes, reference.sizes)
        assert np.array_equal(got.visited_counts, reference.visited_counts)

    @pytest.mark.parametrize(
        "sampler", [dynamic_cover_time_batch, dynamic_infection_time_batch]
    )
    def test_dynamic_factory_samplers(self, fleet, sampler, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        base = _graph()

        def factory(topology_seed):
            return RewiringSequence(base, 2, seed=topology_seed)

        reference = sampler(factory, RUNS, seed=3, workers=1)
        got = sampler(factory, RUNS, seed=3, endpoint=fleet.address)
        assert np.array_equal(got, reference)

    def test_cover_time_samples_endpoint(self, fleet, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        graph = _graph()
        reference = cover_time_samples(graph, runs=RUNS, rng=9, workers=1)
        got = cover_time_samples(
            graph, runs=RUNS, rng=9, endpoint=fleet.address
        )
        assert np.array_equal(got, reference)


def _stalling_worker(address):
    """Lease one shard, then hold it without heartbeating (a dead worker
    that keeps its TCP connection open, so only lease expiry frees the
    shard)."""
    sock = socket.create_connection(parse_endpoint(address), timeout=10)
    while True:
        send_frame(sock, {"type": "lease"})
        message = recv_frame(sock)
        if message is None:
            return
        if message.get("type") == "task":
            time.sleep(600)
        time.sleep(0.02)


class TestFaultTolerance:
    def test_killed_worker_shard_requeues_and_merge_is_bit_identical(self):
        graph = _graph()
        rule = CobraRule(make_policy(2))
        engine = SpreadEngine(rule, graph)
        state = _initial_state(rule, graph.n)
        reference = engine.run_sharded(
            state, 123, workers=1, track_hits=True, max_shard=MAX_SHARD
        )
        with Broker(lease_timeout=0.6) as broker:
            staller = _CTX.Process(
                target=_stalling_worker, args=(broker.address,), daemon=True
            )
            staller.start()

            outcome = {}

            def client():
                outcome["result"] = engine.run_distributed(
                    state,
                    123,
                    endpoint=broker.address,
                    track_hits=True,
                    max_shard=MAX_SHARD,
                    cache=None,
                )

            thread = threading.Thread(target=client)
            thread.start()
            # Wait until the stalling worker holds a lease, then bring
            # up the healthy pair that must absorb the requeue.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if broker_status(broker.address).get("leased", 0) >= 1:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("stalling worker never leased a shard")
            healthy = _spawn_workers(broker.address, 2)
            try:
                thread.join(timeout=30)
                assert not thread.is_alive(), "distributed job did not finish"
            finally:
                _reap(healthy + [staller])
        got = outcome["result"]
        assert np.array_equal(got.finish_times, reference.finish_times)
        assert np.array_equal(got.hit_times, reference.hit_times)
        assert np.array_equal(got.final_state, reference.final_state)

    def test_abrupt_worker_death_disconnect_requeues(self):
        # A worker that dies outright (connection drop) frees its shard
        # immediately, without waiting for the lease to expire.
        graph = _graph()
        rule = CobraRule(make_policy(2))
        engine = SpreadEngine(rule, graph)
        state = _initial_state(rule, graph.n)
        reference = engine.run_sharded(
            state, 123, workers=1, max_shard=MAX_SHARD
        )
        with Broker(lease_timeout=30.0) as broker:
            staller = _CTX.Process(
                target=_stalling_worker, args=(broker.address,), daemon=True
            )
            staller.start()
            outcome = {}

            def client():
                outcome["result"] = engine.run_distributed(
                    state,
                    123,
                    endpoint=broker.address,
                    max_shard=MAX_SHARD,
                    cache=None,
                )

            thread = threading.Thread(target=client)
            thread.start()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if broker_status(broker.address).get("leased", 0) >= 1:
                    break
                time.sleep(0.02)
            staller.kill()  # SIGKILL mid-shard: no goodbye, just EOF
            healthy = _spawn_workers(broker.address, 2)
            try:
                thread.join(timeout=30)
                assert not thread.is_alive()
            finally:
                _reap(healthy)
        assert np.array_equal(
            outcome["result"].finish_times, reference.finish_times
        )

    def test_poison_task_fails_job_after_max_attempts(self):
        # A task whose execution always raises must fail the job with a
        # diagnostic instead of looping forever.
        graph = _graph()
        rule = CobraRule(make_policy(2))
        state = np.zeros((4, graph.n), dtype=bool)
        state[:, 0] = True
        good = ShardTask(
            rule=rule,
            topology=graph,
            completion=SpreadEngine(rule, graph).completion,
            state=state,
            seed=np.random.SeedSequence(1),
            max_rounds=5,
        )
        # Poison via an out-of-range BIPS source: decode succeeds but
        # stepping raises IndexError in the worker.
        poison = ShardTask(
            rule=BipsRule(make_policy(2), source=graph.n + 7),
            topology=graph,
            completion=good.completion,
            state=state,
            seed=np.random.SeedSequence(2),
            max_rounds=5,
        )
        with Broker(lease_timeout=5.0, max_attempts=2) as broker:
            procs = _spawn_workers(broker.address, 1)
            try:
                with pytest.raises(DistributedError, match="failed"):
                    execute_shards_remote(
                        [good, poison], broker.address, cache=None
                    )
            finally:
                _reap(procs)


class TestBrokerHousekeeping:
    def test_broker_survives_garbage_frames(self):
        # A port scanner's HTTP probe must not kill the broker: the
        # bogus length prefix is rejected, the connection dropped, and
        # the next well-formed client served normally.
        with Broker(lease_timeout=5.0) as broker:
            probe = socket.create_connection(
                parse_endpoint(broker.address), timeout=5
            )
            probe.sendall(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
            probe.close()
            # A structurally-valid frame with a missing field likewise.
            partial = socket.create_connection(
                parse_endpoint(broker.address), timeout=5
            )
            send_frame(partial, {"type": "complete"})  # no shard_id
            partial.close()
            assert broker_status(broker.address)["jobs"] == 0


    def test_uncollected_job_is_reaped_after_ttl(self):
        # A client that submits and vanishes must not pin the job's
        # payloads and results in broker memory past job_ttl.
        graph = _graph()
        rule = CobraRule(make_policy(2))
        engine = SpreadEngine(rule, graph)
        state = _initial_state(rule, graph.n)
        with Broker(
            lease_timeout=15.0, sweep_interval=0.05, job_ttl=0.3
        ) as broker:
            procs = _spawn_workers(broker.address, 1)
            try:
                from repro.distributed.wire import encode_task
                from repro.parallel import plan_shards
                from repro.stats import spawn_seeds

                sizes = plan_shards(rule, RUNS, graph.n, max_shard=MAX_SHARD)
                seeds = spawn_seeds(np.random.SeedSequence(1), len(sizes))
                tasks, lo = [], 0
                for size, seed in zip(sizes, seeds):
                    tasks.append(
                        ShardTask(
                            rule=rule,
                            topology=graph,
                            completion=engine.completion,
                            state=state[lo : lo + size],
                            seed=seed,
                        )
                    )
                    lo += size
                # Submit without ever waiting, then abandon.
                sock = socket.create_connection(
                    parse_endpoint(broker.address), timeout=10
                )
                send_frame(
                    sock,
                    {
                        "type": "submit",
                        "job_id": "abandoned",
                        "tasks": [
                            {"index": i, "task": encode_task(t)}
                            for i, t in enumerate(tasks)
                        ],
                    },
                )
                assert recv_frame(sock)["type"] == "accepted"
                sock.close()
                deadline = time.monotonic() + 20
                while time.monotonic() < deadline:
                    counts = broker_status(broker.address)
                    if counts["jobs"] == 0 and counts["done"] == 0:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail(f"abandoned job never reaped: {counts}")
            finally:
                _reap(procs)


class TestCacheIntegration:
    def test_warm_cache_serves_without_broker(self, tmp_path):
        graph = _graph()
        rule = CobraRule(make_policy(2))
        engine = SpreadEngine(rule, graph)
        state = _initial_state(rule, graph.n)
        cache = ResultCache(tmp_path)
        with Broker(lease_timeout=15.0) as broker:
            procs = _spawn_workers(broker.address, 2)
            try:
                first = engine.run_distributed(
                    state, 123, endpoint=broker.address,
                    max_shard=MAX_SHARD, cache=cache,
                )
            finally:
                _reap(procs)
            address = broker.address
        assert len(cache) > 0
        # The broker is gone; a fully-cached rerun must not even dial.
        second = engine.run_distributed(
            state, 123, endpoint=address, max_shard=MAX_SHARD, cache=cache
        )
        assert np.array_equal(second.finish_times, first.finish_times)
        assert np.array_equal(second.final_state, first.final_state)

    def test_cold_cache_against_dead_broker_raises(self, tmp_path):
        graph = _graph()
        rule = CobraRule(make_policy(2))
        engine = SpreadEngine(rule, graph)
        state = _initial_state(rule, graph.n)
        with Broker() as broker:
            address = broker.address
        with pytest.raises(DistributedError, match="cannot reach broker"):
            engine.run_distributed(
                state, 1, endpoint=address, max_shard=MAX_SHARD,
                cache=ResultCache(tmp_path),
            )

    def test_cache_key_sensitivity_causes_recompute(self, tmp_path):
        # Same everything but the seed: the second run must miss.
        graph = _graph()
        rule = CobraRule(make_policy(2))
        engine = SpreadEngine(rule, graph)
        state = _initial_state(rule, graph.n)
        cache = ResultCache(tmp_path)
        with Broker(lease_timeout=15.0) as broker:
            procs = _spawn_workers(broker.address, 2)
            try:
                engine.run_distributed(
                    state, 123, endpoint=broker.address,
                    max_shard=MAX_SHARD, cache=cache,
                )
                before = len(cache)
                engine.run_distributed(
                    state, 124, endpoint=broker.address,
                    max_shard=MAX_SHARD, cache=cache,
                )
            finally:
                _reap(procs)
        assert len(cache) == 2 * before


class TestTraceStitching:
    """Traced ``run_distributed`` produces one stitched span tree.

    The telemetry sink is configured *before* the workers fork, so the
    client, the broker thread, and both worker processes append to the
    same JSONL file; ``summarize_trace`` must then reconstruct a single
    rooted tree — client span at the root, the broker's job span and
    the workers' shard spans stitched beneath it via the wire's
    optional trace key.
    """

    def test_traced_run_stitches_one_tree_across_processes(self, tmp_path):
        from repro.telemetry import JsonlSink, configure, load_traces, summarize_trace

        graph = _graph()
        rule = CobraRule(make_policy(2))
        engine = SpreadEngine(rule, graph)
        state = _initial_state(rule, graph.n)
        path = tmp_path / "stitch.jsonl"
        configure(JsonlSink(path), sample_every=1)
        procs = []
        try:
            with Broker(lease_timeout=15.0) as broker:
                # Forked after configure: the workers inherit the sink
                # (lazily opened, so each process appends its own lines).
                procs = _spawn_workers(broker.address, 2)
                engine.run_distributed(
                    state, 123, endpoint=broker.address,
                    max_shard=MAX_SHARD, cache=None,
                )
        finally:
            _reap(procs)
            configure(None)

        summary = summarize_trace(load_traces([path]))
        # One trace across client + broker thread + 2 worker processes.
        assert not summary.orphans, [s.span_id for s in summary.orphans]
        assert len(summary.roots) == 1
        root = summary.roots[0]
        assert root.name == "engine.run_sharded"

        def walk(span):
            yield span
            for child in span.children:
                for got in walk(child):
                    yield got

        tree = list(walk(root))
        names = {s.name for s in tree}
        assert "broker.job" in names
        assert "shard.run" in names
        # The workers' spans really came from other processes.
        span_pids = {s.pid for s in tree if s.pid is not None}
        worker_pids = {
            s.pid for s in tree if s.name == "shard.run" and s.pid is not None
        }
        assert worker_pids and worker_pids.isdisjoint({root.pid})
        assert len(span_pids) >= 2
        # Every span record of the run carries the one trace id
        # (housekeeping counters/events may be trace-less).
        traces = {
            r.get("trace")
            for r in load_traces([path])
            if r["kind"] in ("span-start", "span-end")
        }
        assert len(traces) == 1 and None not in traces

    def test_untraced_run_emits_nothing(self, tmp_path):
        from repro.telemetry import configure

        graph = _graph()
        rule = CobraRule(make_policy(2))
        engine = SpreadEngine(rule, graph)
        state = _initial_state(rule, graph.n)
        path = tmp_path / "off.jsonl"
        configure(None)
        procs = []
        with Broker(lease_timeout=15.0) as broker:
            procs = _spawn_workers(broker.address, 2)
            try:
                engine.run_distributed(
                    state, 123, endpoint=broker.address,
                    max_shard=MAX_SHARD, cache=None,
                )
            finally:
                _reap(procs)
        assert not path.exists()
