"""The live plane end-to-end: a 2-worker fleet with exporters on.

The acceptance contract: with ``--metrics-port`` enabled on the broker
and every worker, a distributed run stays bit-identical to the
exporter-off serial reference while ``GET /metrics`` on broker *and*
worker returns exposition text the strict round-trip parser accepts,
``/healthz`` reports live, ``/statusz`` carries per-worker throughput
and RSS, and ``repro top --once`` renders both.
"""

import socket
import threading
import urllib.request

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.branching import make_policy
from repro.distributed import Broker
from repro.distributed.worker import run_worker
from repro.engine import CobraRule, SpreadEngine
from repro.graphs import random_regular_graph
from repro.telemetry import fetch_statusz, parse_prometheus

RUNS = 40
MAX_SHARD = 8


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _scrape(address: str) -> dict:
    with urllib.request.urlopen(f"http://{address}/metrics", timeout=5) as r:
        assert r.headers["Content-Type"].startswith("text/plain; version=0.0.4")
        return parse_prometheus(r.read().decode("utf-8"))


class _LiveFleet:
    """Broker + two in-process workers, all serving HTTP endpoints."""

    def __init__(self, broker, metrics_server, worker_ports, threads):
        self.broker = broker
        self.address = broker.address
        self.metrics_address = metrics_server.address
        self.worker_addresses = [f"127.0.0.1:{p}" for p in worker_ports]
        self.threads = threads


@pytest.fixture(scope="module")
def live_fleet():
    with Broker(lease_timeout=15.0) as broker:
        server = broker.serve_metrics(0)
        ports = [_free_port(), _free_port()]
        threads = [
            threading.Thread(
                target=run_worker,
                args=(broker.address,),
                kwargs=dict(
                    poll_interval=0.05, connect_retries=0, metrics_port=port
                ),
                daemon=True,
            )
            for port in ports
        ]
        for thread in threads:
            thread.start()
        fleet = _LiveFleet(broker, server, ports, threads)
        yield fleet
        server.stop()
    # Broker gone: workers see EOF, fail the single re-dial, exit.
    for thread in threads:
        thread.join(timeout=10)


def _run_pair(fleet):
    graph = random_regular_graph(24, 4, rng=11)
    engine = SpreadEngine(CobraRule(make_policy(2)), graph)
    state = np.zeros((RUNS, graph.n), dtype=bool)
    state[:, 0] = True
    reference = engine.run_sharded(
        state, 123, workers=1, track_hits=True, max_shard=MAX_SHARD
    )
    got = engine.run_distributed(
        state,
        123,
        endpoint=fleet.address,
        track_hits=True,
        max_shard=MAX_SHARD,
        cache=None,
    )
    return reference, got


class TestLiveFleet:
    def test_bit_identical_with_exporters_on(self, live_fleet):
        reference, got = _run_pair(live_fleet)
        assert got.rounds_run == reference.rounds_run
        assert np.array_equal(got.finish_times, reference.finish_times)
        assert np.array_equal(got.hit_times, reference.hit_times)
        assert np.array_equal(got.final_state, reference.final_state)
        # The serial reference carries the merged per-shard RSS peak;
        # distributed results stay meta-free (the wire format contract)
        # and report it through the broker's stats path instead.
        assert reference.meta["max_rss"] > 0
        assert all(s["max_rss"] > 0 for s in reference.meta["shards"])

    def test_broker_metrics_parse_with_required_families(self, live_fleet):
        _run_pair(live_fleet)
        families = _scrape(live_fleet.metrics_address)
        for family in (
            "broker_jobs",
            "broker_shards_pending",
            "broker_shards_done",
            "broker_stale_leases",
            "broker_queue_leases",
            "broker_queue_completes",
            "broker_wait_seconds_p50",
            "broker_wait_seconds_count",
            "broker_exec_seconds_p99",
            "retry_breaker_state",
        ):
            assert family in families, family
        # Per-worker throughput is a labelled series, one per connection.
        throughput = families["broker_worker_throughput"]
        assert len(throughput) >= 1
        assert all(labels and labels[0][0] == "worker" for labels in throughput)
        rss = families["broker_worker_max_rss_bytes"]
        assert all(value > 0 for value in rss.values())
        # Sampler gauges from the broker process itself.
        assert families["process_rss_bytes"][()] > 0

    def test_worker_metrics_parse_on_both_workers(self, live_fleet):
        _run_pair(live_fleet)
        for address in live_fleet.worker_addresses:
            families = _scrape(address)
            # The process registry is shared in-process here, so the
            # counter covers both; each worker serves its sampler gauges.
            assert families["worker_completed"][()] > 0
            assert families["process_rss_bytes"][()] > 0
            assert families["process_cpu_user_seconds"][()] >= 0
            assert "retry_breaker_state" in families

    def test_broker_healthz_live(self, live_fleet):
        url = f"http://{live_fleet.metrics_address}/healthz"
        with urllib.request.urlopen(url, timeout=5) as response:
            assert response.status == 200
            body = response.read().decode("utf-8")
        assert '"ok": true' in body
        assert '"sweeper_alive": true' in body

    def test_broker_statusz_per_worker_stats(self, live_fleet):
        _run_pair(live_fleet)
        payload = fetch_statusz(live_fleet.metrics_address)
        assert payload["role"] == "broker"
        assert payload["health"]["ok"] is True
        workers = payload["metrics"]["workers"]
        assert workers
        for stats in workers.values():
            assert stats["throughput"] >= 0
            assert stats["max_rss"] > 0
        assert payload["resources"]["max_rss_bytes"] > 0
        assert "breakers" in payload and "cache" in payload

    def test_worker_statusz_frame(self, live_fleet):
        _run_pair(live_fleet)
        payload = fetch_statusz(live_fleet.worker_addresses[0])
        assert payload["role"] == "worker"
        assert payload["endpoint"] == live_fleet.address
        assert payload["counters"].get("worker.completed", 0) > 0
        assert payload["resources"]["rss_bytes"] > 0

    def test_repro_top_once_renders_throughput_and_rss(self, live_fleet, capsys):
        _run_pair(live_fleet)
        code = cli_main(["top", live_fleet.metrics_address, "--once"])
        out = capsys.readouterr().out
        assert code == 0
        assert "shard/s" in out  # per-worker throughput
        assert "rss=" in out  # per-worker RSS
        assert "queue   :" in out

    def test_repro_top_mixed_live_and_dead(self, live_fleet, capsys):
        code = cli_main(
            ["top", live_fleet.metrics_address, "127.0.0.1:1", "--once"]
        )
        out = capsys.readouterr().out
        assert code == 0  # degrade gracefully without --fail-on-dead
        assert "unreachable" in out

    def test_repro_top_fail_on_dead(self, live_fleet, capsys):
        code = cli_main(
            ["top", "127.0.0.1:1", "--once", "--fail-on-dead"]
        )
        assert code == 1

    def test_repro_status_against_broker_tcp(self, live_fleet, capsys):
        _run_pair(live_fleet)
        code = cli_main(["status", live_fleet.address])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("broker ")
        assert "traffic :" in out and "shard/s" in out
