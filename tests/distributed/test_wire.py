"""Wire-format round-trip tests (property-based where it pays).

The contract: ``decode(encode(x))`` rebuilds an object whose re-
encoding is byte-identical (canonical form is a fixed point), and a
decoded task *executes* identically to the original — the distributed
determinism guarantee reduces to exactly this.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.branching import BernoulliBranching, FixedBranching, make_policy
from repro.distributed import (
    WIRE_VERSION,
    attach_trace,
    canonical_bytes,
    decode_result,
    decode_task,
    encode_result,
    encode_task,
    parse_endpoint,
    task_key,
)
from repro.distributed.wire import (
    _decode_array,
    _decode_seed,
    _decode_topology,
    _encode_array,
    _encode_seed,
    _encode_topology,
)
from repro.dynamics import (
    ChurnSequence,
    EdgeMarkovianSequence,
    FrozenSequence,
    RewiringSequence,
    SnapshotSchedule,
)
from repro.engine import (
    BipsRule,
    CobraRule,
    PullRule,
    PushPullRule,
    PushRule,
    SpreadEngine,
    WalkRule,
)
from repro.engine.completion import AllActive, AllVertices, TargetHit
from repro.graphs import petersen_graph, random_regular_graph
from repro.parallel import ShardTask, run_shard


def _graph():
    return random_regular_graph(20, 4, rng=5)


def _task(rule=None, topology=None, **kw):
    graph = _graph()
    rule = rule or CobraRule(make_policy(2))
    if isinstance(rule, WalkRule):
        state = np.zeros((6, rule.k), dtype=np.int64)
    else:
        state = np.zeros((6, graph.n), dtype=bool)
        state[:, 0] = True
    return ShardTask(
        rule=rule,
        topology=topology if topology is not None else graph,
        completion=AllVertices(),
        state=state,
        seed=np.random.SeedSequence(42).spawn(3)[1],
        **kw,
    )


class TestArrays:
    @given(
        dtype=st.sampled_from(["bool", "int64", "uint8", "float64", "int32"]),
        shape=st.lists(st.integers(0, 5), min_size=1, max_size=3),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_array_round_trip(self, dtype, shape, seed):
        rng = np.random.default_rng(seed)
        arr = (rng.random(shape) * 100).astype(dtype)
        back = _decode_array(_encode_array(arr))
        assert back.dtype == arr.dtype
        assert back.shape == arr.shape
        assert np.array_equal(back, arr)
        # Canonical encoding is a pure function of content.
        assert canonical_bytes(_encode_array(back)) == canonical_bytes(
            _encode_array(arr)
        )

    def test_non_contiguous_array(self):
        arr = np.arange(24, dtype=np.int64).reshape(4, 6)[:, ::2]
        assert np.array_equal(_decode_array(_encode_array(arr)), arr)


class TestSeeds:
    @given(
        entropy=st.integers(0, 2**96),
        spawn=st.lists(st.integers(0, 2**31), max_size=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_seed_round_trip_streams_match(self, entropy, spawn):
        seed = np.random.SeedSequence(entropy, spawn_key=tuple(spawn))
        back = _decode_seed(_encode_seed(seed))
        a = np.random.default_rng(seed).integers(2**63, size=8)
        b = np.random.default_rng(back).integers(2**63, size=8)
        assert np.array_equal(a, b)
        # Spawned children replay too (the sequence-master contract).
        ca = [np.random.default_rng(s).random() for s in seed.spawn(3)]
        cb = [np.random.default_rng(s).random() for s in back.spawn(3)]
        assert ca == cb

    def test_spawned_master_replays_children_from_zero(self):
        # A master that already spawned children must ship so that the
        # receiver regenerates children 0, 1, ... — the replay
        # discipline of MarkovGraphSequence round seeds.
        master = np.random.SeedSequence(7)
        first = master.spawn(2)  # advance the sender's counter
        back = _decode_seed(_encode_seed(master))
        again = back.spawn(2)
        for a, b in zip(first, again):
            assert np.random.default_rng(a).random() == np.random.default_rng(
                b
            ).random()


class TestRulesAndCompletion:
    RULES = [
        CobraRule(make_policy(2)),
        CobraRule(BernoulliBranching(0.5), lazy=True),
        BipsRule(make_policy(2), source=3),
        BipsRule(FixedBranching(3), source=1, lazy=True, discipline="single"),
        WalkRule(k=4, lazy=True),
        PushRule(fanout=2),
        PullRule(),
        PushPullRule(),
    ]

    @pytest.mark.parametrize("rule", RULES, ids=lambda r: type(r).__name__)
    def test_rule_round_trip_is_canonical_fixed_point(self, rule):
        task = _task(rule=rule)
        back = decode_task(encode_task(task))
        assert type(back.rule) is type(rule)
        assert canonical_bytes(encode_task(back)) == canonical_bytes(
            encode_task(task)
        )

    @pytest.mark.parametrize(
        "completion", [AllVertices(), AllActive(), TargetHit(7)]
    )
    def test_completion_round_trip(self, completion):
        task = _task()
        task = ShardTask(
            rule=task.rule,
            topology=task.topology,
            completion=completion,
            state=task.state,
            seed=task.seed,
        )
        back = decode_task(encode_task(task))
        assert type(back.completion) is type(completion)
        if isinstance(completion, TargetHit):
            assert back.completion.target == completion.target

    def test_unsupported_policy_rejected(self):
        class Weird:
            pass

        with pytest.raises(TypeError, match="not wire-encodable"):
            encode_task(_task(rule=CobraRule(Weird())))


class TestTopologies:
    def seqs(self):
        base = _graph()
        return [
            FrozenSequence(base),
            RewiringSequence(base, 2, seed=9),
            EdgeMarkovianSequence(base, 0.02, 0.05, seed=9),
            ChurnSequence(base, 0.1, 0.5, seed=9, protected=(0, 3)),
        ]

    def test_graph_round_trip(self):
        g = petersen_graph()
        back = _decode_topology(_encode_topology(g))
        assert back == g
        assert back.name == g.name
        assert np.array_equal(back.degrees, g.degrees)

    def test_sequences_replay_identically(self):
        for seq in self.seqs():
            back = _decode_topology(_encode_topology(seq))
            for t in (0, 1, 3, 7):
                assert back.graph_at(t) == seq.graph_at(t), (seq.name, t)

    def test_advanced_sequence_ships_from_round_zero(self):
        # Encoding a sequence that already materialised snapshots must
        # still replay the identical realisation remotely.
        seq = RewiringSequence(_graph(), 2, seed=13)
        expected = [seq.graph_at(t) for t in range(6)]
        back = _decode_topology(_encode_topology(seq))
        assert [back.graph_at(t) for t in range(6)] == expected

    def test_snapshot_schedule_rejected(self):
        g = petersen_graph()
        with pytest.raises(TypeError, match="not wire-encodable"):
            _encode_topology(SnapshotSchedule([g]))

    def test_adversarial_sequence_round_trips_as_replay_spec(self):
        from repro.adversary import ADVERSARY_KINDS, AdversarialSequence, make_adversary

        base = _graph()
        for kind in ADVERSARY_KINDS:
            seq = AdversarialSequence(
                base, make_adversary(kind, 4, source=1), 9, swaps_per_round=2
            )
            back = _decode_topology(_encode_topology(seq))
            assert isinstance(back, AdversarialSequence)
            assert back.observes_process
            assert back.adversary.name == kind
            assert back.adversary.budget == 4
            assert back.swaps_per_round == 2
            # With no driving engine both realise the oblivious phase
            # only — and must realise it identically.
            for t in (0, 1, 3):
                assert back.graph_at(t) == seq.fresh_replay().graph_at(t)

    def test_used_adversarial_sequence_encodes_pristine(self):
        # The wire ships a replay spec: an already-driven sequence's
        # observation log must not leak into (or change) the encoding.
        from repro.adversary import AdversarialSequence, make_adversary
        from repro.core.branching import make_policy
        from repro.engine import CobraRule, SpreadEngine

        base = _graph()
        seq = AdversarialSequence(
            base, make_adversary("greedy-cut", 4), 9, swaps_per_round=2
        )
        pristine = canonical_bytes(_encode_topology(seq))
        state = np.zeros((4, base.n), dtype=bool)
        state[:, 0] = True
        SpreadEngine(CobraRule(make_policy(2)), seq).run(
            state, np.random.default_rng(1)
        )
        assert canonical_bytes(_encode_topology(seq)) == pristine


class TestTasks:
    def test_task_round_trip_executes_identically(self):
        for dynamic in (False, True):
            topology = (
                RewiringSequence(_graph(), 2, seed=3) if dynamic else _graph()
            )
            task = _task(topology=topology, track_hits=True)
            ref = run_shard(task)
            got = run_shard(decode_task(encode_task(task)))
            assert np.array_equal(got.finish_times, ref.finish_times)
            assert np.array_equal(got.hit_times, ref.hit_times)
            assert np.array_equal(got.final_state, ref.final_state)

    def test_version_mismatch_rejected(self):
        obj = encode_task(_task())
        obj["v"] = WIRE_VERSION + 1
        with pytest.raises(ValueError, match="wire version"):
            decode_task(obj)

    def test_task_key_is_content_address(self):
        a, b = _task(), _task()
        assert task_key(a) == task_key(b)
        different_seed = ShardTask(
            rule=b.rule,
            topology=b.topology,
            completion=b.completion,
            state=b.state,
            seed=np.random.SeedSequence(999),
        )
        assert task_key(different_seed) != task_key(a)
        flagged = ShardTask(
            rule=b.rule,
            topology=b.topology,
            completion=b.completion,
            state=b.state,
            seed=b.seed,
            track_hits=True,
        )
        assert task_key(flagged) != task_key(a)

    def test_result_round_trip(self):
        task = _task(track_hits=True, record_sizes=True, record_visited=True)
        ref = run_shard(task)
        back = decode_result(encode_result(ref))
        assert np.array_equal(back.finish_times, ref.finish_times)
        assert back.rounds_run == ref.rounds_run
        assert np.array_equal(back.final_state, ref.final_state)
        assert np.array_equal(back.hit_times, ref.hit_times)
        assert np.array_equal(back.sizes, ref.sizes)
        assert np.array_equal(back.visited_counts, ref.visited_counts)

    def test_none_fields_survive(self):
        ref = run_shard(_task())
        back = decode_result(encode_result(ref))
        assert back.hit_times is None
        assert back.sizes is None
        assert back.visited_counts is None

    def test_backend_hint_round_trips(self):
        base = _task()
        hinted = ShardTask(
            rule=base.rule,
            topology=base.topology,
            completion=base.completion,
            state=base.state,
            seed=base.seed,
            backend="numpy",
        )
        encoded = encode_task(hinted)
        assert encoded["backend"] == "numpy"
        assert decode_task(encoded).backend == "numpy"

    def test_default_encoding_has_no_backend_key(self):
        """Tasks without a hint encode exactly as before the key
        existed: same bytes, same cache address, no version bump."""
        encoded = encode_task(_task())
        assert "backend" not in encoded
        assert decode_task(encoded).backend is None
        assert encoded["v"] == WIRE_VERSION


class TestAttachTrace:
    """The optional trace-context frame key (cross-host stitching)."""

    def test_no_context_is_byte_identical(self):
        """Untraced frames encode exactly as before the key existed:
        same bytes on the wire, no version bump."""
        import json

        frame = {"type": "submit", "job_id": "j1", "tasks": []}
        reference = json.dumps(frame, sort_keys=True)
        out = attach_trace(frame, None)
        assert out is frame
        assert json.dumps(frame, sort_keys=True) == reference
        assert "trace" not in frame
        assert WIRE_VERSION == 1

    def test_context_attaches_wire_dict(self):
        from repro.telemetry import TraceContext

        frame = {"type": "submit"}
        attach_trace(frame, TraceContext(trace_id="T", parent_span_id="P"))
        assert frame["trace"] == {"id": "T", "parent": "P"}

    def test_plain_dict_relays_unchanged(self):
        # The broker relays the stored wire dict without re-decoding.
        frame = {"type": "lease-reply"}
        attach_trace(frame, {"id": "T", "parent": "P"})
        assert frame["trace"] == {"id": "T", "parent": "P"}

    def test_attached_frame_round_trips_to_context(self):
        from repro.telemetry import TraceContext

        frame = {}
        attach_trace(frame, TraceContext(trace_id="T", parent_span_id=None))
        assert TraceContext.from_wire(frame.get("trace")) == TraceContext(
            trace_id="T", parent_span_id=None
        )

    def test_empty_dict_attaches_nothing(self):
        frame = {}
        attach_trace(frame, {})
        assert "trace" not in frame

    def test_backend_hint_changes_task_key(self):
        """A bitplane result is only distribution-equivalent: it must
        never be served from a numpy task's cache slot."""
        base = _task()
        hinted = ShardTask(
            rule=base.rule,
            topology=base.topology,
            completion=base.completion,
            state=base.state,
            seed=base.seed,
            backend="bitplane",
        )
        assert task_key(hinted) != task_key(base)


class TestEndpoints:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("127.0.0.1:7603", ("127.0.0.1", 7603)),
            ("example.org:80", ("example.org", 80)),
            ("7603", ("127.0.0.1", 7603)),
            (":7603", ("127.0.0.1", 7603)),
            (("10.0.0.1", 99), ("10.0.0.1", 99)),
        ],
    )
    def test_parse_endpoint(self, spec, expected):
        assert parse_endpoint(spec) == expected

    def test_shared_graph_rejected(self):
        g = petersen_graph()
        handle = g.to_shared()
        try:
            with pytest.raises(TypeError, match="SharedGraph"):
                _encode_topology(handle)
        finally:
            handle.unlink()
            handle.close()


class TestEngineIntegration:
    def test_static_topology_encodes_as_plain_graph(self):
        g = _graph()
        engine = SpreadEngine(CobraRule(make_policy(2)), g)
        direct = canonical_bytes(_encode_topology(g))
        wrapped = canonical_bytes(_encode_topology(engine.topology))
        assert direct == wrapped
