"""Ledger race windows under a fake clock: the S-class edge cases.

Three timing races the live broker can hit but sockets cannot schedule
deterministically: a requeued shard completing twice (the original
worker finishes *after* its lease expired and the replacement already
ran), the attempts budget boundary (exactly ``max_attempts`` leases
must be allowed, one more must fail the job), and heartbeats arriving
for leases that already expired.  Plus the reject/refund bookkeeping
``reject_result`` added for undecodable result frames.
"""

from repro.distributed import ShardLedger


def _ledger(**kw):
    kw.setdefault("lease_timeout", 10.0)
    ledger = ShardLedger(**kw)
    ledger.submit("job", [(0, {"t": 0}), (1, {"t": 1})])
    return ledger


class TestRequeueRacingLateComplete:
    def test_late_complete_after_expiry_does_not_clobber_replacement(self):
        ledger = ShardLedger(lease_timeout=10.0)
        ledger.submit("job", [(0, {"t": 0})])
        stale = ledger.lease("w1", 0.0)
        ledger.expire(100.0)  # w1's lease is gone, shard pending again
        fresh = ledger.lease("w2", 100.0)
        assert fresh.shard_id == stale.shard_id
        # w2 completes first; w1's late duplicate must be ignored.
        ledger.complete(fresh.shard_id, {"winner": "w2"})
        ledger.complete(stale.shard_id, {"winner": "w1"})
        record = ledger._shards[fresh.shard_id]
        assert record.state == "done"
        assert record.result == {"winner": "w2"}

    def test_late_complete_before_release_still_counts(self):
        # Expired but not yet re-leased: the original worker's result
        # arrives and is correct (bit-identical by the seed contract),
        # so the ledger takes it rather than recomputing.
        ledger = _ledger()
        record = ledger.lease("w1", 0.0)
        ledger.expire(100.0)
        ledger.complete(record.shard_id, {"winner": "w1"})
        assert ledger._shards[record.shard_id].state == "done"
        # The stale queue entry must be skipped, not re-leased.
        follow = ledger.lease("w2", 100.0)
        assert follow is None or follow.shard_id != record.shard_id

    def test_stale_fail_after_expiry_burns_nothing(self):
        ledger = _ledger()
        stale = ledger.lease("w1", 0.0)
        ledger.expire(100.0)
        fresh = ledger.lease("w2", 100.0)
        attempts_before = fresh.attempts
        # w1's error report refers to a lease it no longer holds.
        ledger.fail(stale.shard_id, "w1", "stale error")
        assert fresh.state == "leased"
        assert fresh.worker == "w2"
        assert fresh.attempts == attempts_before


class TestMaxAttemptsBoundary:
    def test_exactly_max_attempts_leases_allowed(self):
        # max_attempts=3 means the third lease may still succeed; only
        # a failure *after* the third burns the job (off-by-one guard).
        ledger = ShardLedger(lease_timeout=10.0, max_attempts=3)
        ledger.submit("job", [(0, {"t": 0})])
        for round_no in range(2):
            record = ledger.lease("w", float(round_no))
            assert record is not None
            ledger.fail(record.shard_id, "w", f"boom {round_no}")
            assert ledger.job_state("job")[0] == "running"
        final = ledger.lease("w", 2.0)
        assert final is not None
        assert final.attempts == 3
        ledger.complete(final.shard_id, {"ok": True})
        assert ledger.job_state("job")[0] == "done"

    def test_failure_on_final_attempt_fails_job(self):
        ledger = ShardLedger(lease_timeout=10.0, max_attempts=3)
        ledger.submit("job", [(0, {"t": 0})])
        for round_no in range(3):
            record = ledger.lease("w", float(round_no))
            ledger.fail(record.shard_id, "w", "boom")
        state, error = ledger.job_state("job")
        assert state == "failed"
        assert "after 3 attempts" in error
        assert ledger.lease("w", 9.0) is None  # failed jobs are skipped


class TestHeartbeatOnExpiredLease:
    def test_renew_after_expiry_is_refused(self):
        ledger = _ledger()
        record = ledger.lease("w1", 0.0)
        ledger.expire(100.0)
        assert not ledger.renew(record.shard_id, "w1", 100.0)

    def test_renew_after_reassignment_is_refused(self):
        # The zombie's heartbeat must not extend the *replacement's*
        # lease (same shard id, different worker).
        ledger = _ledger()
        record = ledger.lease("w1", 0.0)
        ledger.expire(100.0)
        fresh = ledger.lease("w2", 100.0)
        deadline = fresh.deadline
        assert not ledger.renew(record.shard_id, "w1", 105.0)
        assert fresh.deadline == deadline

    def test_renew_exactly_at_deadline_still_valid(self):
        # expire() uses strict <, so a heartbeat landing exactly on the
        # deadline tick keeps the lease.
        ledger = _ledger()
        record = ledger.lease("w1", 0.0)
        ledger.expire(record.deadline)
        assert ledger.renew(record.shard_id, "w1", record.deadline)


class TestRejectResult:
    def test_reject_refunds_attempt(self):
        ledger = ShardLedger(lease_timeout=10.0, max_attempts=3)
        ledger.submit("job", [(0, {"t": 0})])
        record = ledger.lease("w1", 0.0)
        ledger.reject_result(record.shard_id, "w1", "undecodable")
        # The attempt was refunded: a healthy worker still has the full
        # budget ahead of it.
        again = ledger.lease("w2", 1.0)
        assert again is not None
        assert again.attempts == 1

    def test_reject_bounded_by_max_attempts(self):
        # A worker that deterministically produces garbage must exhaust
        # the budget, not loop forever on refunded attempts.
        ledger = ShardLedger(lease_timeout=10.0, max_attempts=2)
        ledger.submit("job", [(0, {"t": 0})])
        for tick in range(4):
            record = ledger.lease("bad", float(tick))
            if record is None:
                break
            ledger.reject_result(record.shard_id, "bad", "garbage")
        assert ledger.job_state("job")[0] == "failed"

    def test_stale_reject_ignored(self):
        ledger = _ledger()
        stale = ledger.lease("w1", 0.0)
        ledger.expire(100.0)
        fresh = ledger.lease("w2", 100.0)
        ledger.reject_result(stale.shard_id, "w1", "stale")
        assert fresh.state == "leased"
        assert fresh.rejects == 0

    def test_reject_then_clean_completion(self):
        ledger = _ledger()
        record = ledger.lease("w1", 0.0)
        ledger.reject_result(record.shard_id, "w1", "mangled frame")
        retry = ledger.lease("w2", 1.0)
        ledger.complete(retry.shard_id, {"ok": True})
        assert ledger._shards[retry.shard_id].state == "done"
