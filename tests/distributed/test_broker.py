"""ShardLedger unit tests: lease/heartbeat/requeue with an explicit clock.

The ledger takes ``now`` timestamps, so every fault-tolerance
transition — lease expiry, worker disconnect, error retry, attempt
exhaustion — is exercised here deterministically, without sockets or
sleeps (the live asyncio broker is covered end-to-end in
``test_distributed.py``).
"""

import pytest

from repro.distributed import ShardLedger


def _ledger(**kw):
    kw.setdefault("lease_timeout", 10.0)
    ledger = ShardLedger(**kw)
    ledger.submit("job", [(0, {"t": 0}), (1, {"t": 1}), (2, {"t": 2})])
    return ledger


class TestLeasing:
    def test_fifo_lease_order(self):
        ledger = _ledger()
        assert [ledger.lease("w", 0.0).index for _ in range(3)] == [0, 1, 2]
        assert ledger.lease("w", 0.0) is None

    def test_lease_sets_deadline_and_attempts(self):
        ledger = _ledger()
        record = ledger.lease("w1", 5.0)
        assert record.worker == "w1"
        assert record.attempts == 1
        assert record.deadline == 15.0

    def test_renew_extends_deadline(self):
        ledger = _ledger()
        record = ledger.lease("w1", 0.0)
        assert ledger.renew(record.shard_id, "w1", 8.0)
        assert record.deadline == 18.0

    def test_renew_wrong_worker_or_state_refused(self):
        ledger = _ledger()
        record = ledger.lease("w1", 0.0)
        assert not ledger.renew(record.shard_id, "w2", 1.0)
        ledger.complete(record.shard_id, {"r": 1})
        assert not ledger.renew(record.shard_id, "w1", 1.0)
        assert not ledger.renew("job:99", "w1", 1.0)

    def test_duplicate_submit_rejected(self):
        ledger = _ledger()
        with pytest.raises(ValueError, match="already submitted"):
            ledger.submit("job", [(0, {})])

    def test_rejected_submit_leaves_no_orphans(self):
        # Atomicity: a duplicate index must roll back completely — no
        # orphan shard to lease, and the job id stays reusable.
        ledger = ShardLedger()
        with pytest.raises(ValueError, match="duplicate shard index"):
            ledger.submit("dup", [(0, {"a": 1}), (0, {"b": 2})])
        assert ledger.lease("w", 0.0) is None
        assert ledger.counts()["jobs"] == 0
        ledger.submit("dup", [(0, {"a": 1}), (1, {"b": 2})])  # reusable
        assert ledger.lease("w", 0.0).index == 0


class TestFaultTolerance:
    def test_expired_lease_requeues(self):
        ledger = _ledger()
        record = ledger.lease("w1", 0.0)
        for other in [ledger.lease("w0", 0.0) for _ in range(2)]:
            ledger.complete(other.shard_id, {})
        assert ledger.expire(9.0) == []  # still within the lease
        assert ledger.expire(11.0) == ["job"]
        assert record.state == "pending"
        # Re-leased to another worker; attempts accumulate.
        again = ledger.lease("w2", 12.0)
        assert again.shard_id == record.shard_id
        assert again.attempts == 2

    def test_heartbeat_prevents_expiry(self):
        ledger = _ledger()
        record = ledger.lease("w1", 0.0)
        ledger.renew(record.shard_id, "w1", 9.0)
        assert ledger.expire(11.0) == []
        assert record.state == "leased"

    def test_disconnect_requeues_all_worker_leases(self):
        ledger = _ledger()
        a = ledger.lease("w1", 0.0)
        b = ledger.lease("w1", 0.0)
        c = ledger.lease("w2", 0.0)
        assert sorted(ledger.release_worker("w1")) == ["job", "job"]
        assert a.state == b.state == "pending"
        assert c.state == "leased"

    def test_error_requeues_until_attempts_exhausted(self):
        ledger = _ledger(max_attempts=2)
        record = ledger.lease("w1", 0.0)
        for other in [ledger.lease("w0", 0.0) for _ in range(2)]:
            ledger.complete(other.shard_id, {})
        ledger.fail(record.shard_id, "w1", "boom")
        assert record.state == "pending"
        assert ledger.job_state("job") == ("running", None)
        record = ledger.lease("w1", 1.0)
        ledger.fail(record.shard_id, "w1", "boom again")
        assert record.state == "failed"
        state, error = ledger.job_state("job")
        assert state == "failed"
        assert "boom again" in error

    def test_failed_job_shards_not_leased(self):
        ledger = _ledger(max_attempts=1)
        record = ledger.lease("w1", 0.0)
        ledger.fail(record.shard_id, "w1", "poison task")
        # The remaining two shards are pending but their job is dead.
        assert ledger.lease("w2", 1.0) is None

    def test_stale_error_report_ignored(self):
        # w1's lease expired and the shard was re-leased to w2; w1's
        # late error must neither requeue w2's work nor burn attempts.
        ledger = _ledger()
        record = ledger.lease("w1", 0.0)
        for other in [ledger.lease("w0", 0.0) for _ in range(2)]:
            ledger.complete(other.shard_id, {})
        ledger.expire(11.0)
        again = ledger.lease("w2", 12.0)
        assert ledger.fail(record.shard_id, "w1", "late boom") == "job"
        assert again.state == "leased"
        assert again.worker == "w2"
        assert again.attempts == 2
        # And an error for a shard already completed is a no-op too.
        ledger.complete(again.shard_id, {"ok": 1})
        ledger.fail(again.shard_id, "w2", "even later boom")
        assert again.state == "done"

    def test_late_duplicate_complete_ignored(self):
        ledger = _ledger()
        record = ledger.lease("w1", 0.0)
        for other in [ledger.lease("w0", 0.0) for _ in range(2)]:
            ledger.complete(other.shard_id, {})
        ledger.expire(11.0)
        again = ledger.lease("w2", 12.0)
        assert again.shard_id == record.shard_id
        assert ledger.complete(again.shard_id, {"winner": "w2"}) == "job"
        # The original worker wakes up and reports too: first wins.
        assert ledger.complete(record.shard_id, {"winner": "w1"}) == "job"
        (_, result), *_ = ledger.job_results("job")
        assert result == {"winner": "w2"}


class TestJobLifecycle:
    def test_job_completion_and_results_in_index_order(self):
        ledger = _ledger()
        records = [ledger.lease("w", 0.0) for _ in range(3)]
        for record in reversed(records):  # complete out of order
            assert ledger.job_state("job")[0] == "running"
            ledger.complete(record.shard_id, {"index": record.index})
        assert ledger.job_state("job") == ("done", None)
        assert ledger.job_results("job") == [
            (0, {"index": 0}),
            (1, {"index": 1}),
            (2, {"index": 2}),
        ]

    def test_unknown_job(self):
        assert _ledger().job_state("nope") == ("unknown", None)

    def test_counts_and_drop(self):
        ledger = _ledger()
        record = ledger.lease("w", 0.0)
        ledger.complete(record.shard_id, {})
        counts = ledger.counts()
        assert counts["pending"] == 2
        assert counts["done"] == 1
        assert counts["jobs"] == 1
        ledger.drop_job("job")
        assert ledger.counts() == {
            "pending": 0,
            "leased": 0,
            "done": 0,
            "failed": 0,
            "jobs": 0,
        }
        # Shards of a dropped job are simply gone from the queue.
        assert ledger.lease("w", 1.0) is None

    def test_empty_job_is_immediately_done(self):
        ledger = ShardLedger()
        ledger.submit("empty", [])
        assert ledger.job_state("empty") == ("done", None)
        assert ledger.job_results("empty") == []

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardLedger(lease_timeout=0.0)
        with pytest.raises(ValueError):
            ShardLedger(max_attempts=0)
