"""Content-addressed result cache: hit/miss semantics and resolution."""

import numpy as np
import pytest

from repro.core.branching import make_policy
from repro.distributed import ResultCache, resolve_cache, task_key
from repro.distributed.cache import CACHE_ENV_VAR
from repro.engine import CobraRule
from repro.engine.completion import AllVertices
from repro.graphs import random_regular_graph
from repro.parallel import ShardTask, run_shard


def _task(seed=1):
    graph = random_regular_graph(16, 4, rng=2)
    state = np.zeros((4, graph.n), dtype=bool)
    state[:, 0] = True
    return ShardTask(
        rule=CobraRule(make_policy(2)),
        topology=graph,
        completion=AllVertices(),
        state=state,
        seed=np.random.SeedSequence(seed),
        track_hits=True,
    )


class TestResultCache:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = _task()
        key = task_key(task)
        assert cache.get(key) is None
        assert key not in cache
        result = run_shard(task)
        path = cache.put(key, result)
        assert path.exists()
        assert key in cache
        assert len(cache) == 1
        back = cache.get(key)
        assert np.array_equal(back.finish_times, result.finish_times)
        assert np.array_equal(back.hit_times, result.hit_times)
        assert np.array_equal(back.final_state, result.final_state)
        assert cache.hits == 1 and cache.misses == 1

    def test_different_tasks_different_addresses(self, tmp_path):
        cache = ResultCache(tmp_path)
        a, b = _task(seed=1), _task(seed=2)
        cache.put(task_key(a), run_shard(a))
        assert cache.get(task_key(b)) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = task_key(_task())
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_put_accepts_encoded_dict(self, tmp_path):
        from repro.distributed import encode_result

        cache = ResultCache(tmp_path)
        task = _task()
        result = run_shard(task)
        cache.put(task_key(task), encode_result(result))
        back = cache.get(task_key(task))
        assert np.array_equal(back.finish_times, result.finish_times)


class TestResolution:
    def test_none_disables(self):
        assert resolve_cache(None) is None

    def test_instance_passes_through(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert resolve_cache(cache) is cache

    def test_path_builds_cache(self, tmp_path):
        cache = resolve_cache(tmp_path / "store")
        assert isinstance(cache, ResultCache)
        assert cache.root == tmp_path / "store"

    @pytest.mark.parametrize("value", ["", "0", "off", "OFF"])
    def test_env_disables_auto(self, monkeypatch, value):
        monkeypatch.setenv(CACHE_ENV_VAR, value)
        assert resolve_cache("auto") is None

    def test_env_points_auto_at_directory(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "cc"))
        cache = resolve_cache("auto")
        assert cache is not None
        assert cache.root == tmp_path / "cc"

    def test_unset_env_defaults_to_home(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        root = ResultCache.default_root()
        assert root is not None
        assert root.parts[-2:] == ("repro", "results")
