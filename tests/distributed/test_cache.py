"""Content-addressed result cache: hit/miss semantics and resolution."""

import numpy as np
import pytest

from repro.core.branching import make_policy
from repro.distributed import ResultCache, resolve_cache, task_key
from repro.distributed.cache import CACHE_ENV_VAR
from repro.engine import CobraRule
from repro.engine.completion import AllVertices
from repro.graphs import random_regular_graph
from repro.parallel import ShardTask, run_shard


def _task(seed=1):
    graph = random_regular_graph(16, 4, rng=2)
    state = np.zeros((4, graph.n), dtype=bool)
    state[:, 0] = True
    return ShardTask(
        rule=CobraRule(make_policy(2)),
        topology=graph,
        completion=AllVertices(),
        state=state,
        seed=np.random.SeedSequence(seed),
        track_hits=True,
    )


class TestResultCache:
    def test_miss_then_hit_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = _task()
        key = task_key(task)
        assert cache.get(key) is None
        assert key not in cache
        result = run_shard(task)
        path = cache.put(key, result)
        assert path.exists()
        assert key in cache
        assert len(cache) == 1
        back = cache.get(key)
        assert np.array_equal(back.finish_times, result.finish_times)
        assert np.array_equal(back.hit_times, result.hit_times)
        assert np.array_equal(back.final_state, result.final_state)
        assert cache.hits == 1 and cache.misses == 1

    def test_different_tasks_different_addresses(self, tmp_path):
        cache = ResultCache(tmp_path)
        a, b = _task(seed=1), _task(seed=2)
        cache.put(task_key(a), run_shard(a))
        assert cache.get(task_key(b)) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = task_key(_task())
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(key) is None

    def test_put_accepts_encoded_dict(self, tmp_path):
        from repro.distributed import encode_result

        cache = ResultCache(tmp_path)
        task = _task()
        result = run_shard(task)
        cache.put(task_key(task), encode_result(result))
        back = cache.get(task_key(task))
        assert np.array_equal(back.finish_times, result.finish_times)


class TestResolution:
    def test_none_disables(self):
        assert resolve_cache(None) is None

    def test_instance_passes_through(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert resolve_cache(cache) is cache

    def test_path_builds_cache(self, tmp_path):
        cache = resolve_cache(tmp_path / "store")
        assert isinstance(cache, ResultCache)
        assert cache.root == tmp_path / "store"

    @pytest.mark.parametrize("value", ["", "0", "off", "OFF"])
    def test_env_disables_auto(self, monkeypatch, value):
        monkeypatch.setenv(CACHE_ENV_VAR, value)
        assert resolve_cache("auto") is None

    def test_env_points_auto_at_directory(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "cc"))
        cache = resolve_cache("auto")
        assert cache is not None
        assert cache.root == tmp_path / "cc"

    def test_unset_env_defaults_to_home(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        root = ResultCache.default_root()
        assert root is not None
        assert root.parts[-2:] == ("repro", "results")


class TestLRUBound:
    def _fill(self, cache, seeds):
        keys = []
        for seed in seeds:
            task = _task(seed=seed)
            keys.append(task_key(task))
            cache.put(keys[-1], run_shard(task))
        return keys

    def test_unbounded_by_default(self, tmp_path, monkeypatch):
        from repro.distributed.cache import CACHE_MAX_BYTES_ENV_VAR

        monkeypatch.delenv(CACHE_MAX_BYTES_ENV_VAR, raising=False)
        cache = ResultCache(tmp_path)
        assert cache.max_bytes is None
        self._fill(cache, range(1, 6))
        assert len(cache) == 5 and cache.evictions == 0

    def test_put_evicts_down_to_bound(self, tmp_path):
        probe = ResultCache(tmp_path / "probe", max_bytes=None)
        self._fill(probe, [1])
        entry_size = probe.total_bytes()

        cache = ResultCache(tmp_path / "lru", max_bytes=7 * entry_size // 2)
        keys = self._fill(cache, range(1, 6))
        assert cache.total_bytes() <= cache.max_bytes
        assert cache.evictions >= 2
        # The newest entry always survives.
        assert keys[-1] in cache

    def test_eviction_is_lru_by_access(self, tmp_path):
        import os
        import time

        probe = ResultCache(tmp_path / "probe", max_bytes=None)
        self._fill(probe, [1])
        entry_size = probe.total_bytes()

        # Entry sizes differ by a few bytes (JSON digit counts), so the
        # bound gets half an entry of slack: three fit, a fourth won't.
        cache = ResultCache(tmp_path / "lru", max_bytes=7 * entry_size // 2)
        k1, k2, k3 = self._fill(cache, [1, 2, 3])
        # Age the stored atimes apart, then touch k1: it becomes the
        # most recently used despite being the oldest write.
        now = time.time()
        for offset, key in ((30, k1), (20, k2), (10, k3)):
            path = cache.path_for(key)
            os.utime(path, (now - offset, now - offset))
        assert cache.get(k1) is not None
        (k4,) = self._fill(cache, [4])
        assert k2 not in cache  # the true LRU went first
        assert k1 in cache and k3 in cache and k4 in cache

    def test_oversized_entry_still_caches(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=1)
        (key,) = self._fill(cache, [1])
        assert key in cache  # the fresh entry is exempt from eviction
        assert len(cache) == 1

    def test_env_var_sets_bound(self, tmp_path, monkeypatch):
        from repro.distributed.cache import CACHE_MAX_BYTES_ENV_VAR

        monkeypatch.setenv(CACHE_MAX_BYTES_ENV_VAR, "12345")
        assert ResultCache(tmp_path).max_bytes == 12345
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV_VAR, "0")
        assert ResultCache(tmp_path).max_bytes is None
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV_VAR, "not-a-number")
        with pytest.raises(ValueError, match="byte count"):
            ResultCache(tmp_path)

    def test_hit_refreshes_atime(self, tmp_path):
        import os
        import time

        cache = ResultCache(tmp_path, max_bytes=None)
        (key,) = self._fill(cache, [1])
        stale = time.time() - 1000
        os.utime(cache.path_for(key), (stale, stale))
        assert cache.get(key) is not None
        assert cache.path_for(key).stat().st_atime > stale + 500
