"""Baseline process tests."""

import numpy as np
import pytest

from repro.baselines import (
    flooding_broadcast_time,
    flooding_frontier_sizes,
    multi_walk_cover_samples,
    multi_walk_cover_time,
    push_broadcast_samples,
    push_broadcast_time,
    random_walk_cover_samples,
    random_walk_cover_time,
    walk_trajectory,
)
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    star_graph,
)


class TestWalkTrajectory:
    def test_moves_along_edges(self, petersen, rng):
        traj = walk_trajectory(petersen, 0, 50, rng)
        assert traj.shape == (51,)
        assert traj[0] == 0
        for a, b in zip(traj[:-1], traj[1:]):
            assert petersen.has_edge(int(a), int(b))

    def test_lazy_can_stay(self, rng):
        traj = walk_trajectory(path_graph(3), 0, 200, rng, lazy=True)
        stays = np.sum(traj[:-1] == traj[1:])
        assert stays > 50  # roughly half the steps stay put

    def test_disconnected_rejected(self, rng):
        with pytest.raises(ValueError):
            walk_trajectory(Graph(4, [(0, 1)]), 0, 5, rng)


class TestRandomWalkCover:
    def test_covers_complete_graph(self):
        t = random_walk_cover_time(complete_graph(8), rng=1)
        # Coupon collector: ~ n ln n ~ 17; allow wide range.
        assert 7 <= t <= 300

    def test_star_needs_many_steps(self):
        # Star cover ~ 2 (n-1) H_{n-1}: strictly more than 2(n-1) - 2.
        t = random_walk_cover_time(star_graph(10), rng=2)
        assert t >= 17

    def test_cap_raises(self):
        with pytest.raises(RuntimeError, match="failed to cover"):
            random_walk_cover_time(cycle_graph(32), rng=1, max_steps=5)

    def test_samples(self):
        s = random_walk_cover_samples(complete_graph(6), runs=5, rng=3)
        assert s.shape == (5,)
        assert np.all(s >= 5)


class TestMultiWalk:
    def test_more_walkers_faster(self):
        g = cycle_graph(40)
        t1 = np.mean(multi_walk_cover_samples(g, 1, runs=6, rng=1))
        t8 = np.mean(multi_walk_cover_samples(g, 8, runs=6, rng=2))
        assert t8 < t1

    def test_start_array(self, rng):
        g = cycle_graph(12)
        starts = np.array([0, 3, 6, 9])
        t = multi_walk_cover_time(g, 4, starts, rng=rng)
        assert t >= 1

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            multi_walk_cover_time(cycle_graph(5), 0)
        with pytest.raises(ValueError):
            multi_walk_cover_time(cycle_graph(5), 2, np.array([0]))


class TestPush:
    def test_informs_everyone(self):
        t = push_broadcast_time(complete_graph(32), rng=4)
        # Push on K_n completes in ~ log2 n + ln n ~ 8.5 rounds.
        assert 5 <= t <= 40

    def test_fanout_speeds_up(self):
        g = cycle_graph(64)
        t1 = np.mean(push_broadcast_samples(g, runs=8, rng=5, fanout=1))
        t2 = np.mean(push_broadcast_samples(g, runs=8, rng=6, fanout=2))
        assert t2 <= t1

    def test_fanout_validated(self):
        with pytest.raises(ValueError):
            push_broadcast_time(cycle_graph(5), fanout=0)

    def test_monotone_informed_set(self):
        # Push never un-informs: broadcast time >= eccentricity.
        g = path_graph(16)
        t = push_broadcast_time(g, 0, rng=7)
        assert t >= 15


class TestFlooding:
    def test_equals_eccentricity(self):
        assert flooding_broadcast_time(path_graph(10), 0) == 9
        assert flooding_broadcast_time(path_graph(10), 5) == 5
        assert flooding_broadcast_time(complete_graph(7), 3) == 1

    def test_frontier_sizes(self):
        sizes = flooding_frontier_sizes(star_graph(6), 1)
        # From a leaf: 1, then hub (2), then everything (6).
        assert sizes.tolist() == [1, 2, 6]

    def test_frontier_cumulative(self, petersen):
        sizes = flooding_frontier_sizes(petersen, 0)
        assert sizes[0] == 1
        assert sizes[-1] == petersen.n
        assert np.all(np.diff(sizes) >= 0)


class TestCrossProcessOrdering:
    def test_flooding_fastest_cobra_between(self):
        # On the Petersen graph: flooding <= COBRA mean <= single-walk mean.
        from repro.core import cover_time_samples

        g = petersen_graph()
        flood = flooding_broadcast_time(g, 0)
        cobra = cover_time_samples(g, runs=60, rng=8).mean()
        walk = random_walk_cover_samples(g, runs=10, rng=9).mean()
        assert flood <= cobra <= walk
