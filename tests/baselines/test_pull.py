"""Pull and push-pull gossip tests."""

import numpy as np
import pytest

from repro.baselines import (
    pull_broadcast_samples,
    pull_broadcast_time,
    push_broadcast_samples,
    push_pull_broadcast_time,
)
from repro.graphs import complete_graph, cycle_graph, path_graph, star_graph


class TestPull:
    def test_informs_everyone(self):
        t = pull_broadcast_time(complete_graph(32), rng=1)
        assert 4 <= t <= 60

    def test_star_pull_is_fast_from_hub(self):
        # Every leaf pulls from the hub (its only neighbour): 1 round.
        assert pull_broadcast_time(star_graph(16), 0, rng=2) == 1

    def test_star_pull_from_leaf(self):
        # Hub pulls from a uniform leaf: E[rounds to learn] = n - 1;
        # then one more round informs all other leaves.
        t = pull_broadcast_time(star_graph(8), 1, rng=3)
        assert t >= 2

    def test_samples(self):
        s = pull_broadcast_samples(cycle_graph(16), runs=5, rng=4)
        assert s.shape == (5,)
        assert np.all(s >= 8)  # frontier moves <= 1 per side per round

    def test_cap(self):
        with pytest.raises(RuntimeError, match="pull failed"):
            pull_broadcast_time(cycle_graph(64), rng=1, max_rounds=3)


class TestPushPull:
    def test_informs_everyone(self):
        t = push_pull_broadcast_time(complete_graph(64), rng=5)
        assert 3 <= t <= 30

    def test_faster_than_push_alone_on_star(self):
        # Push from hub wastes rounds informing one leaf at a time;
        # push-pull lets all leaves pull: dramatic difference.
        g = star_graph(64)
        pp = np.mean(
            [push_pull_broadcast_time(g, 0, rng=10 + i) for i in range(10)]
        )
        p = np.mean(push_broadcast_samples(g, 0, runs=10, rng=6))
        assert pp * 5 < p

    def test_cap(self):
        with pytest.raises(RuntimeError, match="push-pull failed"):
            push_pull_broadcast_time(path_graph(64), rng=1, max_rounds=2)
