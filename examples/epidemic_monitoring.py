"""Scenario: SIS epidemic with a persistently-infected host (BIPS).

The paper notes BIPS "may be of independent interest since in the
context of epidemics, certain viruses exhibit the property that a
particular host can become persistently infected."  This example runs
that epidemic on a contact network: every individual re-samples b = 2
contacts per round and catches the infection if a contact is infected;
one host never clears it.

It tracks the infection-size trajectory against Lemma 4.1's guaranteed
expected-growth curve and Lemma 5.4's doubling phase schedule, then
reports the time to full infection next to Theorem 1.5's bound.

Run with::

    python examples/epidemic_monitoring.py
"""

import numpy as np

from repro.core import BipsProcess
from repro.graphs import eigenvalue_gap, random_regular_graph, second_eigenvalue
from repro.stats import mean_ci
from repro.theory import (
    bound_spaa17_regular,
    expected_growth_curve,
    lemma54_schedule,
)


def main() -> None:
    rng = np.random.default_rng(17)
    g = random_regular_graph(512, 8, rng=rng)
    lam = second_eigenvalue(g)
    gap = 1.0 - lam
    print(f"contact network: {g}   1 - lambda = {gap:.3f}")

    runs = 50
    proc = BipsProcess(g, source=0, branching=2)
    trajectories = []
    times = []
    for _ in range(runs):
        res = proc.run(rng)
        trajectories.append(res.sizes)
        times.append(res.infection_time)
    times = np.array(times)

    # Mean infection-size trajectory vs the lemma's pessimistic curve.
    horizon = max(len(t) for t in trajectories)
    mean_sizes = np.zeros(horizon)
    for t in range(horizon):
        mean_sizes[t] = np.mean(
            [traj[t] if t < len(traj) else g.n for traj in trajectories]
        )
    lemma_curve = expected_growth_curve(g.n, lam, t_max=horizon - 1)

    print(f"\nround  mean infected   Lemma 4.1 floor")
    for t in range(0, horizon, max(1, horizon // 12)):
        print(f"{t:5d}  {mean_sizes[t]:13.1f}   {lemma_curve[t]:15.1f}")

    schedule = lemma54_schedule(g.n, g.dmax, gap)
    print(
        f"\nLemma 5.4 phase schedule: kappa_0 = {schedule.kappa0:.1f}, "
        f"{len(schedule.kappas)} doubling phases, "
        f"budget {schedule.total_rounds:.0f} rounds to reach n/4"
    )

    bound = bound_spaa17_regular(g.n, g.dmax, gap)
    est = mean_ci(times)
    print(f"\ntime to full infection: {est} rounds "
          f"(Theorem 1.5 bound, constant 1: {bound:.0f})")
    print("the mean trajectory dominates the lemma floor at every round: "
          f"{bool(np.all(mean_sizes >= lemma_curve - 1e-9))}")


if __name__ == "__main__":
    main()
