"""Scenario: choosing a broadcast primitive for a peer-to-peer overlay.

The paper's motivation (Section 1): propagate one message to every node
quickly, but cap per-node transmissions per round and per-node memory.
This example plays that design exercise on a 1024-node random-regular
overlay: it compares

* COBRA (b = 2)            — 2 transmissions/round, one round of memory,
* single random walk       — 1 transmission/round, no redundancy,
* log(n) independent walks — the classic multi-walk speedup,
* push rumour spreading    — 1 transmission/round but permanent memory,
* flooding                 — r transmissions/round (the speed limit),

reporting rounds-to-complete *and* total transmissions, the two axes
the paper trades off.

Run with::

    python examples/broadcast_protocol.py
"""

import math

import numpy as np

from repro.baselines import (
    flooding_broadcast_time,
    multi_walk_cover_samples,
    push_broadcast_samples,
    random_walk_cover_samples,
)
from repro.core import CobraProcess
from repro.graphs import diameter, random_regular_graph
from repro.stats import mean_ci
from repro.theory import lower_bound_cover


def cobra_cover_and_transmissions(graph, runs, rng):
    """Cover rounds and total transmissions for COBRA (b = 2).

    Each active vertex sends b = 2 messages per round, so transmissions
    per round = 2 |C_t|.
    """
    rounds, transmissions = [], []
    proc = CobraProcess(graph, branching=2)
    for _ in range(runs):
        res = proc.run(0, rng, record=True)
        rounds.append(res.cover_time)
        transmissions.append(2 * int(res.active_sizes[:-1].sum()))
    return np.array(rounds), np.array(transmissions)


def main() -> None:
    rng = np.random.default_rng(99)
    g = random_regular_graph(1024, 8, rng=rng)
    print(f"overlay: {g}  diameter={diameter(g)}")
    print(f"universal lower bound for b=2: "
          f"{lower_bound_cover(g.n, diameter(g)):.1f} rounds\n")

    runs = 20
    cobra_rounds, cobra_tx = cobra_cover_and_transmissions(g, runs, rng)
    walk = random_walk_cover_samples(g, runs=6, rng=rng)
    k = math.ceil(math.log2(g.n))
    kwalk = multi_walk_cover_samples(g, k, runs=6, rng=rng)
    push = push_broadcast_samples(g, runs=runs, rng=rng)
    flood = flooding_broadcast_time(g, 0)

    rows = [
        ("COBRA b=2 (paper)", mean_ci(cobra_rounds).value,
         f"{mean_ci(cobra_tx).value:.0f}", "1 round"),
        ("single random walk", mean_ci(walk).value,
         f"{mean_ci(walk).value:.0f}", "none"),
        (f"{k} independent walks", mean_ci(kwalk).value,
         f"{k * mean_ci(kwalk).value:.0f}", "none"),
        ("push rumour", mean_ci(push).value,
         "~n log n", "permanent"),
        ("flooding", float(flood),
         f"~{2 * g.m * flood}", "permanent"),
    ]
    print(f"{'protocol':26} {'rounds':>10} {'total msgs':>12} {'node memory':>12}")
    print("-" * 66)
    for name, rounds, msgs, memory in rows:
        print(f"{name:26} {rounds:10.1f} {msgs:>12} {memory:>12}")

    speedup = mean_ci(walk).value / mean_ci(cobra_rounds).value
    print(
        f"\nCOBRA completes {speedup:.0f}x faster than a single walk while "
        "sending 2 messages\nper informed node per round and remembering "
        "nothing across rounds —\nthe trade-off the paper formalises."
    )


if __name__ == "__main__":
    main()
