"""Scenario: analysing your own network from an edge-list file.

A downstream user has a network (here: a small collaboration-style
graph written to a temp file), loads it with the edge-list reader, and
asks the questions this library answers:

* Which start vertex gives the worst-case broadcast time (the paper's
  ``COVER(G) = max_u E[cover(u)]``)?
* How does the spectral profile slot the network into the paper's
  bounds?
* How do exact random-walk hitting times (b = 1) compare with COBRA's
  hit times (b = 2)?

Run with::

    python examples/custom_network.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import (
    cobra_hit_survival_mc,
    random_walk_hitting_time,
    worst_start_cover,
)
from repro.graphs import read_edge_list, spectral_profile, summarize
from repro.theory import bound_spaa17_general

EDGE_LIST = """\
# a two-community collaboration network with a bridge
a1 a2\na1 a3\na2 a3\na1 a4\na2 a4\na3 a4\na4 a5\na5 a6
b1 b2\nb1 b3\nb2 b3\nb1 b4\nb2 b4\nb3 b4\nb4 b5
a6 b5
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "network.edges"
        path.write_text(EDGE_LIST)
        g = read_edge_list(path, name="collab")

    s = summarize(g)
    print(f"loaded {g}")
    print(f"  diameter={s.diameter} dmax={s.dmax} bipartite={s.bipartite}")
    prof = spectral_profile(g)
    print(f"  {prof}")
    print(
        f"  Theorem 1.1 budget (constant 1): "
        f"{bound_spaa17_general(g.n, g.m, g.dmax):.1f} rounds"
    )

    profile = worst_start_cover(g, runs_per_start=64, seed=11)
    print("\nper-start expected cover time (COVER(G) = worst case):")
    for u, mean in zip(profile.starts.tolist(), profile.means.tolist()):
        marker = "  <- worst" if u == profile.worst_start else ""
        print(f"  start {u:2d}: {mean:6.2f}{marker}")
    print(f"COVER(G) estimate: {profile.cover_of_g:.2f} rounds "
          f"(best start: {profile.best_start()})")

    # Hitting the far corner: random walk exactly vs COBRA empirically.
    src, dst = profile.best_start(), profile.worst_start
    rw = random_walk_hitting_time(g, src, dst)
    curve = cobra_hit_survival_mc(g, src, dst, runs=2000, horizon=200, rng=5)
    cobra_mean = float(curve.probabilities.sum())
    print(f"\nhitting {dst} from {src}:")
    print(f"  random walk (b=1, exact linear solve): {rw:.1f} steps")
    print(f"  COBRA (b=2, Monte Carlo):              {cobra_mean:.1f} rounds")


if __name__ == "__main__":
    main()
