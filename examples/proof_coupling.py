"""The duality proof, step by step, on one concrete random table.

Theorem 1.3's proof fixes the neighbour selections ω(u, t), runs COBRA
forward and BIPS on the reversed table, and observes that — with the
randomness stripped away — "v visited within T rounds" and
"C ∩ A_T ≠ ∅" are the *same event*.  This script walks one sampled
table through both replays, prints both trajectories, and then verifies
the equivalence across thousands of tables.

Run with::

    python examples/proof_coupling.py
"""

import numpy as np

from repro.core import (
    SelectionTable,
    bips_replay,
    cobra_replay,
    coupling_equivalence_holds,
)
from repro.graphs import cycle_graph, erdos_renyi_graph


def walk_through_one_table() -> None:
    g = cycle_graph(6)
    rng = np.random.default_rng(4)
    horizon = 3
    table = SelectionTable.sample(g, horizon, rng)
    source, start = 3, [0]

    print(f"graph: {g}, T = {horizon}, COBRA start C = {start}, BIPS source v = {source}")
    print("\nselection table omega(u, t):")
    for t in range(horizon):
        row = "  ".join(
            f"{u}->{list(table.selections[t][u])}" for u in range(g.n)
        )
        print(f"  round {t + 1}: {row}")

    # COBRA forward.
    active = np.zeros(g.n, dtype=bool)
    active[start] = True
    visited = active.copy()
    print("\nCOBRA forward:")
    print(f"  C_0 = {sorted(np.nonzero(active)[0].tolist())}")
    for t in range(horizon):
        nxt = np.zeros(g.n, dtype=bool)
        for u in np.nonzero(active)[0]:
            for w in table.selections[t][int(u)]:
                nxt[w] = True
        active = nxt
        visited |= active
        print(f"  C_{t + 1} = {sorted(np.nonzero(active)[0].tolist())}")

    # BIPS on the reversed table.
    infected = np.zeros(g.n, dtype=bool)
    infected[source] = True
    print("\nBIPS on the reversed table:")
    print(f"  A_0 = {sorted(np.nonzero(infected)[0].tolist())}")
    for s in range(1, horizon + 1):
        row = table.selections[horizon - s]
        nxt = np.zeros(g.n, dtype=bool)
        for u in range(g.n):
            if any(infected[w] for w in row[u]):
                nxt[u] = True
        nxt[source] = True
        infected = nxt
        print(f"  A_{s} = {sorted(np.nonzero(infected)[0].tolist())} "
              f"(used omega(., {horizon - s + 1}))")

    lhs = bool(visited[source])
    rhs = bool(infected[start].any())
    print(f"\nv = {source} visited by COBRA within T: {lhs}")
    print(f"C ∩ A_T nonempty in BIPS:            {rhs}")
    print(f"equivalence holds: {lhs == rhs}")


def mass_verification() -> None:
    rng = np.random.default_rng(11)
    trials = 5000
    ok = 0
    for trial in range(trials):
        g = erdos_renyi_graph(7, 0.45, rng=trial % 25)
        table = SelectionTable.sample(g, horizon=1 + trial % 6, rng=rng)
        ok += coupling_equivalence_holds(
            table, [trial % g.n], (3 * trial + 1) % g.n
        )
    print(f"\nmass verification: equivalence held on {ok}/{trials} random "
          "tables (the proof's claim is deterministic, so anything below "
          "100% would be a bug)")


def main() -> None:
    walk_through_one_table()
    mass_verification()


if __name__ == "__main__":
    main()
