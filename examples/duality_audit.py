"""Audit of the duality theorem (Theorem 1.3), exact and at scale.

The paper's entire proof strategy rests on one identity:

    P(Hit(v) > T | C_0 = C)  =  P(C ∩ A_T = ∅ | A_0 = {v})

(COBRA hit-time survival = BIPS non-infection probability, under time
reversal of the neighbour selections).  This example:

1. verifies the identity *exactly* on a small graph by computing both
   sides from the subset Markov chains, for several branching factors;
2. repeats the comparison by Monte Carlo on a 64-node expander where
   exact computation is impossible.

Run with::

    python examples/duality_audit.py
"""

import numpy as np

from repro.core import (
    BernoulliBranching,
    verify_duality_exact,
    verify_duality_monte_carlo,
)
from repro.graphs import cycle_graph, random_regular_graph


def main() -> None:
    # --- exact audit ---------------------------------------------------
    g = cycle_graph(7)
    print(f"exact audit on {g.name}: source v = 3, start set C = {{0}}")
    print(f"{'branching':14} {'max |LHS - RHS|':>18}")
    for label, policy in [
        ("b = 1 (walk)", 1),
        ("b = 2", 2),
        ("b = 3", 3),
        ("b = 1 + 0.4", BernoulliBranching(0.4)),
    ]:
        report = verify_duality_exact(g, 3, [0], branching=policy, t_max=20)
        print(f"{label:14} {report.max_abs_diff:18.2e}")

    report = verify_duality_exact(g, 3, [0], t_max=20)
    print("\nround-by-round (b = 2):")
    print(f"{'T':>3} {'COBRA: P(Hit(v)>T)':>20} {'BIPS: P(C∩A_T=∅)':>20}")
    for t in range(0, 21, 4):
        print(
            f"{t:3d} {report.cobra_side[t]:20.10f} {report.bips_side[t]:20.10f}"
        )

    # --- Monte-Carlo audit at scale ------------------------------------
    g2 = random_regular_graph(64, 3, rng=5)
    mc = verify_duality_monte_carlo(
        g2, source=0, start_set=[63], runs=4000, rng=np.random.default_rng(9)
    )
    print(f"\nMonte-Carlo audit on {g2.name} (4000 runs per side):")
    print(f"{'T':>3} {'COBRA side':>12} {'BIPS side':>12} {'diff':>9}")
    for i, t in enumerate(mc.horizons):
        print(
            f"{int(t):3d} {mc.cobra_side[i]:12.4f} {mc.bips_side[i]:12.4f} "
            f"{abs(mc.cobra_side[i] - mc.bips_side[i]):9.4f}"
        )
    print(f"\nconsistent within 4 joint standard errors: {mc.consistent()}")


if __name__ == "__main__":
    main()
