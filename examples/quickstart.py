"""Quickstart: simulate COBRA on a hypercube and compare with the paper's bounds.

Run with::

    python examples/quickstart.py

This is the 60-second tour: build a graph, sample COBRA cover times,
and place the measurement against the paper's bound ladder.
"""

import numpy as np

from repro import (
    cover_time_samples,
    eigenvalue_gap,
    hypercube_graph,
    hypercube_ladder,
    lower_bound_cover,
)
from repro.graphs import diameter
from repro.stats import mean_ci, whp_quantile


def main() -> None:
    rng = np.random.default_rng(7)
    dim = 8
    g = hypercube_graph(dim)
    print(f"graph: {g}")
    print(f"eigenvalue gap (lazy): {eigenvalue_gap(g, lazy=True):.4f} "
          f"(paper: Θ(1/log n) = {1 / dim:.4f})")

    # The hypercube is bipartite, so use the lazy COBRA variant the
    # paper prescribes before Theorem 1.2.
    times = cover_time_samples(g, start=0, runs=200, lazy=True, rng=rng)
    mean = mean_ci(times)
    whp = whp_quantile(times, rng=rng)
    print(f"\nCOBRA (b=2, lazy) cover time over {times.shape[0]} runs:")
    print(f"  mean : {mean}")
    print(f"  95th percentile ('w.h.p.'): {whp}")

    ladder = hypercube_ladder(dim)
    print("\nbound ladder at n = 2^{} = {}:".format(dim, g.n))
    print(f"  SPAA'16  O(log^8 n): {ladder.spaa16:12.1f}")
    print(f"  PODC'16  O(log^4 n): {ladder.podc16:12.1f}")
    print(f"  SPAA'17  O(log^3 n): {ladder.spaa17:12.1f}   <- this paper")
    print(f"  universal lower bound: {lower_bound_cover(g.n, diameter(g)):.1f}")
    print(
        f"\nmeasured / new bound = {whp.value / ladder.spaa17:.4f} "
        "(well below 1: the bound holds with room to spare, and the\n"
        "measurement tracks the conjectured Θ(log n))"
    )


if __name__ == "__main__":
    main()
