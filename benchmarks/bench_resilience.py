"""Resilience overhead: the no-op fault/retry/checkpoint path must be free.

Times COBRA cover sampling five ways:

* **bare** — ``run_sharded(workers=1)``, resilience hooks present but
  no plan installed (the production default);
* **inert-plan** — identical run with a :class:`FaultPlan` installed
  whose rules target only distributed injection sites, none of which a
  local run reaches: measures the cost of the hook checks themselves;
* **live-on** — identical run with the live observability plane fully
  up: a :class:`MetricsServer` serving ``/metrics`` and a
  :class:`ResourceSampler` ticking in the background, the
  ``--metrics-port`` deployment mode;
* **checkpointed** — cold checkpointed run (manifest + cache writes
  per shard);
* **checkpointed-resume** — the same invocation again, fully served
  from the content-addressed cache.

Every invocation appends ``(n, R, mode, seconds)`` rows to
``BENCH_resilience.json`` via :mod:`benchmarks.record`.  The pytest
gates assert (a) bit-identity across every mode and (b) the <5%%
overhead contracts: with no faults firing, the median inert-plan run
stays within 5%% of the median bare run, and so does the median
live-on run (exporter + sampler on vs off).

Run with::

    PYTHONPATH=src python benchmarks/bench_resilience.py           # full cell
    PYTHONPATH=src python benchmarks/bench_resilience.py --smoke   # seconds
    PYTHONPATH=src python -m pytest benchmarks/bench_resilience.py -v
"""

from __future__ import annotations

import argparse
import statistics
import sys
import tempfile
import time

import numpy as np
from record import machine_context, record_bench

from repro.core.branching import make_policy
from repro.distributed import ResultCache
from repro.engine import CobraRule, SpreadEngine
from repro.graphs import random_regular_graph
from repro.resilience import FaultPlan, FaultRule, fault_injection
from repro.telemetry import MetricsServer, ResourceSampler
from repro.telemetry.compare import LIVE_OVERHEAD_MAX, RESILIENCE_OVERHEAD_MAX

N = 4096
RUNS = 256
DEGREE = 8
SEED = 20170724
MAX_SHARD = 64
REPEATS = 3

#: A plan that can never fire locally: every rule is pinned to
#: distributed-tier sites, so a local run pays only the hook checks.
INERT_PLAN = FaultPlan(
    seed=1,
    drop=FaultRule(rate=1.0, sites=("worker.send",)),
    corrupt=FaultRule(rate=1.0, sites=("client.send",)),
    refuse_connections=FaultRule(rate=1.0, sites=("client.connect",)),
)


def build_cell(n: int = N, runs: int = RUNS):
    """The benchmark cell: an expander, a COBRA engine, one-hot starts."""
    graph = random_regular_graph(n, DEGREE, rng=1)
    engine = SpreadEngine(CobraRule(make_policy(2)), graph)
    state = np.zeros((runs, n), dtype=bool)
    state[:, 0] = True
    return graph, engine, state


def _timed(fn, repeats: int = REPEATS) -> tuple[float, object]:
    """Median wall-clock of *repeats* calls, plus the last result."""
    samples = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples), result


def measure(
    n: int = N,
    runs: int = RUNS,
    max_shard: int = MAX_SHARD,
    repeats: int = REPEATS,
) -> tuple[list[dict], dict]:
    """Measure all four modes; returns (rows, results-by-mode)."""
    _, engine, state = build_cell(n, runs)
    rows: list[dict] = []
    results: dict[str, np.ndarray] = {}
    # Untimed warmup so first-run effects (imports, allocator, kernel
    # selection) don't land in whichever mode happens to run first.
    engine.run_sharded(state, SEED, workers=1, max_shard=max_shard)

    def row(mode: str, seconds: float) -> None:
        rows.append(
            {
                "n": n,
                "R": runs,
                "mode": mode,
                "seconds": round(seconds, 4),
            }
        )

    bare_s, bare = _timed(
        lambda: engine.run_sharded(state, SEED, workers=1, max_shard=max_shard),
        repeats,
    )
    row("bare", bare_s)
    results["bare"] = bare.finish_times

    def inert():
        with fault_injection(INERT_PLAN):
            return engine.run_sharded(
                state, SEED, workers=1, max_shard=max_shard
            )

    inert_s, inert_result = _timed(inert, repeats)
    row("inert-plan", inert_s)
    results["inert-plan"] = inert_result.finish_times

    # Steady-state live-plane cost: the server + sampler run across the
    # timed region (the deployment shape — they live for the process,
    # not per job), so their one-off start/stop cost is not measured.
    with MetricsServer(port=0), ResourceSampler():
        live_s, live_result = _timed(
            lambda: engine.run_sharded(
                state, SEED, workers=1, max_shard=max_shard
            ),
            repeats,
        )
    row("live-on", live_s)
    results["live-on"] = live_result.finish_times

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(f"{tmp}/cache", max_bytes=None)
        manifest = f"{tmp}/job.ckpt.json"
        t0 = time.perf_counter()
        cold = engine.run_sharded(
            state, SEED, workers=1, max_shard=max_shard,
            cache=cache, checkpoint=manifest,
        )
        row("checkpointed", time.perf_counter() - t0)
        results["checkpointed"] = cold.finish_times

        t0 = time.perf_counter()
        warm = engine.run_sharded(
            state, SEED, workers=1, max_shard=max_shard,
            cache=cache, checkpoint=manifest,
        )
        row("checkpointed-resume", time.perf_counter() - t0)
        results["checkpointed-resume"] = warm.finish_times
    return rows, results


def check_identity(results: dict) -> None:
    """Every mode must reproduce the bare reference exactly."""
    for mode, times in results.items():
        if not np.array_equal(times, results["bare"]):
            raise AssertionError(
                f"{mode} samples differ from the bare reference — the "
                "no-op resilience contract is broken"
            )


def overhead_fraction(rows: list[dict], mode: str = "inert-plan") -> float:
    """(*mode* - bare) / bare, from the recorded rows."""
    by_mode = {r["mode"]: r["seconds"] for r in rows}
    bare = by_mode["bare"]
    return (by_mode[mode] - bare) / bare if bare > 0 else 0.0


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_resilience_modes_bit_identical():
    """Gate: inert plan / checkpoint / resume all equal the bare run."""
    rows, results = measure(n=512, runs=96, max_shard=16, repeats=1)
    check_identity(results)
    record_bench(
        "resilience", rows, meta={"cell": "smoke", "gate": "bit-identity"}
    )


def test_inert_plan_overhead_under_five_percent():
    """Gate: with no faults firing, resilience costs <5% wall-clock.

    Recorded to a throwaway trajectory, then asserted through the
    comparator's ``evaluate_gates`` — the same code path
    ``repro bench compare`` runs on every committed entry.
    """
    from repro.telemetry import evaluate_gates, load_bench

    rows, _results = measure(n=1024, runs=128, max_shard=32, repeats=5)
    overhead = overhead_fraction(rows)
    live_overhead = overhead_fraction(rows, "live-on")
    with tempfile.TemporaryDirectory() as tmp:
        path = record_bench(
            "resilience",
            rows,
            meta={
                "cell": "gate",
                "overhead_fraction": round(overhead, 4),
                "live_overhead_fraction": round(live_overhead, 4),
            },
            root=tmp,
        )
        gates = evaluate_gates(load_bench(path))
    assert gates, "resilience gate did not evaluate on the recorded entry"
    failed = [g for g in gates if g.regressed]
    assert not failed, f"resilience gate failed: {failed}; rows: {rows}"


def test_checkpoint_resume_serves_cache():
    """Gate: the resumed run never recomputes (cache hits == shards)."""
    from repro.telemetry import get_telemetry

    tel = get_telemetry()
    before = tel.counters().get("client.cache.hits", 0)
    _rows, results = measure(n=512, runs=96, max_shard=16, repeats=1)
    check_identity(results)
    assert tel.counters().get("client.cache.hits", 0) >= before + 6  # 96/16


# ----------------------------------------------------------------------
# script entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    """Measure, print the table, and append to BENCH_resilience.json."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=N)
    parser.add_argument("--runs", type=int, default=RUNS)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny cell (n=1024, R=128, max_shard=32) for CI smoke runs",
    )
    args = parser.parse_args(argv)
    n, runs, max_shard = (
        (1024, 128, 32) if args.smoke else (args.n, args.runs, MAX_SHARD)
    )

    rows, results = measure(n, runs, max_shard=max_shard)
    check_identity(results)
    overhead = overhead_fraction(rows)
    live_overhead = overhead_fraction(rows, "live-on")
    ctx = machine_context()
    print(
        f"COBRA b=2 on rreg-{DEGREE}-{n}, R={runs}, serial shards "
        f"({ctx['cpus']} CPUs); inert-plan overhead {overhead:+.1%} "
        f"(gate < {RESILIENCE_OVERHEAD_MAX:.0%}), live exporter overhead "
        f"{live_overhead:+.1%} (gate < {LIVE_OVERHEAD_MAX:.0%})"
    )
    header = f"{'mode':22} {'seconds':>9}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['mode']:22} {row['seconds']:>9.4f}")
    record_bench(
        "resilience",
        rows,
        meta={
            "cell": "smoke" if args.smoke else "full",
            "overhead_fraction": round(overhead, 4),
            "live_overhead_fraction": round(live_overhead, 4),
        },
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
