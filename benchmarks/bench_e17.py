"""Benchmark: adversarial worst-case cover sweep (experiment E17).

Regenerates the experiment's table(s) under timing and asserts its
shape criteria (see DESIGN.md experiment index).
"""

from conftest import run_and_check


def test_bench_e17(benchmark):
    result = benchmark.pedantic(
        run_and_check, args=("E17",), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.all_passed
    assert result.tables
