"""Sharded-engine throughput: multiprocess R-axis fan-out vs one process.

Times COBRA cover sampling at ``n = 16384``, ``R = 1024`` (the ISSUE 3
headline cell) three ways:

* **run_batch** — the single-process batched engine, one stream;
* **run_sharded, workers=1** — the same shard plan executed serially
  (isolates shard-planning overhead from parallel speedup);
* **run_sharded, workers=2,4,...** — shards fanned out over processes
  against the shared-memory CSR graph.

Every invocation appends its measurements to ``BENCH_sharding.json``
at the repo root via :mod:`benchmarks.record`, so the speedup
trajectory is tracked across PRs.  The pytest gate asserts the ≥ 3×
wall-clock win of 4 workers over ``run_batch`` — on machines that
actually have ≥ 4 CPUs (it records, but skips the assertion, on
smaller boxes: fan-out cannot beat the hardware).  Rows carry the
machine's ``cpus`` so readers can interpret them, and on a single-CPU
box the multi-worker rows are skipped entirely rather than recorded
as misleading sub-1x "speedups".

Run with::

    PYTHONPATH=src python benchmarks/bench_sharding.py            # full cell
    PYTHONPATH=src python benchmarks/bench_sharding.py --smoke    # seconds
    PYTHONPATH=src python -m pytest benchmarks/bench_sharding.py -v
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np
import pytest
from record import machine_context, record_bench

from repro.core.branching import make_policy
from repro.core.cobra import CobraProcess
from repro.engine import CobraRule, SpreadEngine
from repro.graphs import random_regular_graph
from repro.telemetry.compare import SHARDING_MIN_CPUS, SHARDING_SPEEDUP_FLOOR

N = 16384
RUNS = 1024
DEGREE = 8
SEED = 20170724
WORKER_GRID = (1, 2, 4)
# The gate itself lives in repro.telemetry.compare (evaluate_gates), so
# the bench script, `repro bench compare`, and CI share one floor.
SPEEDUP_FLOOR = SHARDING_SPEEDUP_FLOOR
MIN_CPUS_FOR_GATE = SHARDING_MIN_CPUS


def build_cell(n: int = N, runs: int = RUNS):
    """The benchmark cell: an expander, a COBRA engine, one-hot starts."""
    graph = random_regular_graph(n, DEGREE, rng=1)
    engine = SpreadEngine(CobraRule(make_policy(2)), graph)
    state = np.zeros((runs, n), dtype=bool)
    state[:, 0] = True
    return graph, engine, state


def time_run_batch(graph, runs: int) -> tuple[float, np.ndarray]:
    """Single-process baseline: one ``run_batch`` stream over all runs."""
    proc = CobraProcess(graph)
    starts = np.zeros(runs, dtype=np.int64)
    t0 = time.perf_counter()
    res = proc.run_batch(starts, np.random.default_rng(SEED))
    return time.perf_counter() - t0, res.cover_times


def time_run_sharded(engine, state, workers: int, max_shard: int | None):
    """Sharded path at a given worker count (same seed, same shard plan)."""
    t0 = time.perf_counter()
    res = engine.run_sharded(state, SEED, workers=workers, max_shard=max_shard)
    return time.perf_counter() - t0, res


def traced_round_profile(engine, state, max_shard: int | None) -> dict:
    """One untimed instrumented pass: per-round latency percentiles.

    Runs the cell once more with full telemetry (memory sink, stride 1)
    and digests the engine's per-round histograms — the "hot rounds"
    half of the BENCH telemetry attachment; shard skew comes free from
    the timed runs' merged meta.
    """
    from repro.telemetry import MemorySink, configure

    tel = configure(MemorySink(), sample_every=1)
    try:
        engine.run_sharded(state, SEED, workers=1, max_shard=max_shard)
        return {
            "round_seconds": tel.histogram_summary("engine.round.seconds"),
            "round_occupied": tel.histogram_summary("engine.round.occupied"),
        }
    finally:
        configure(None)


def measure(
    n: int = N,
    runs: int = RUNS,
    worker_grid=WORKER_GRID,
    max_shard: int | None = None,
) -> list[dict]:
    """Measure the full cell; returns one row per execution mode.

    ``max_shard`` caps runs per shard; smoke cells pass a small value
    so that even a tiny run count splits into several shards and the
    multiprocess path genuinely executes (the default plan would fold
    ``runs <= 256`` into one shard, silently serialising every worker
    count).

    Every row is annotated with the machine's visible CPU count, and
    on a single-CPU box the ``workers > 1`` rows are skipped outright:
    process fan-out on one core measures scheduler thrash, and the
    resulting sub-1x "speedups" would poison the recorded trajectory.
    """
    cpus = machine_context()["cpus"]
    if cpus < 2:
        skipped = [w for w in worker_grid if w > 1]
        worker_grid = tuple(w for w in worker_grid if w <= 1)
        if skipped:
            print(
                f"note: {cpus} CPU visible — skipping workers={skipped} "
                "rows (fan-out cannot beat the hardware)"
            )
    graph, engine, state = build_cell(n, runs)
    base_seconds, base_times = time_run_batch(graph, runs)
    rows = [
        {
            "mode": "run_batch",
            "n": n,
            "runs": runs,
            "workers": 0,
            "cpus": cpus,
            "seconds": round(base_seconds, 4),
            "speedup_vs_batch": 1.0,
            "mean_cover": float(base_times.mean()),
        }
    ]
    reference = None
    telemetry = {"shard_skew": None, "shard_wall_s": None}
    for workers in worker_grid:
        seconds, res = time_run_sharded(engine, state, workers, max_shard)
        times = res.finish_times
        if reference is None:
            reference = times
        elif not np.array_equal(times, reference):
            raise AssertionError(
                f"sharded samples differ at workers={workers} — "
                "determinism contract broken"
            )
        meta = res.meta or {}
        if meta.get("workers", 0) > 1 or telemetry["shard_skew"] is None:
            # Prefer the widest fan-out's skew: single-worker runs are
            # trivially balanced.
            telemetry["shard_skew"] = meta.get("skew")
            telemetry["shard_wall_s"] = meta.get("wall_s")
        rows.append(
            {
                "mode": "run_sharded",
                "n": n,
                "runs": runs,
                "workers": workers,
                "cpus": cpus,
                "seconds": round(seconds, 4),
                "speedup_vs_batch": round(base_seconds / seconds, 3),
                "mean_cover": float(times.mean()),
            }
        )
    telemetry.update(traced_round_profile(engine, state, max_shard))
    return rows, telemetry


def best_speedup(rows: list[dict]) -> float:
    """Best sharded speedup over the single-process batch baseline."""
    return max(r["speedup_vs_batch"] for r in rows if r["mode"] == "run_sharded")


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_sharded_determinism_small():
    """Cheap correctness gate: identical samples at 1/2/4 workers."""
    _, engine, state = build_cell(n=512, runs=96)
    ref = engine.run_sharded(state, 7, workers=1, max_shard=16)
    for workers in (2, 4):
        got = engine.run_sharded(state, 7, workers=workers, max_shard=16)
        assert np.array_equal(got.finish_times, ref.finish_times)


@pytest.mark.skipif(
    machine_context()["cpus"] < MIN_CPUS_FOR_GATE,
    reason=f"speedup gate needs >= {MIN_CPUS_FOR_GATE} CPUs",
)
def test_sharded_speedup_gate():
    """Acceptance gate: >= 3x over run_batch at n=16384, R=1024, 4 workers.

    Recorded first, then asserted through the comparator's
    ``evaluate_gates`` — the same code path ``repro bench compare``
    runs on every committed entry.
    """
    from repro.telemetry import evaluate_gates, load_bench

    rows, telemetry = measure()
    path = record_bench(
        "sharding", rows, meta={"gate": f">={SPEEDUP_FLOOR}x"},
        telemetry=telemetry,
    )
    gates = evaluate_gates(load_bench(path))
    assert gates, "sharding gate did not evaluate on the recorded entry"
    failed = [g for g in gates if g.regressed]
    assert not failed, f"sharding gate failed: {failed}; rows: {rows}"


# ----------------------------------------------------------------------
# script entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    """Measure, print the table, and append to BENCH_sharding.json."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=N)
    parser.add_argument("--runs", type=int, default=RUNS)
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=list(WORKER_GRID),
        help="worker counts to time (default: 1 2 4)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny cell (n=1024, R=128) for CI smoke runs",
    )
    args = parser.parse_args(argv)
    # Smoke: tiny cell, but max_shard=32 so 128 runs still split into 4
    # shards and worker pools really spin up.
    n, runs, max_shard = (
        (1024, 128, 32) if args.smoke else (args.n, args.runs, None)
    )

    rows, telemetry = measure(n, runs, tuple(args.workers), max_shard=max_shard)
    ctx = machine_context()
    print(f"COBRA b=2 on rreg-{DEGREE}-{n}, R={runs} ({ctx['cpus']} CPUs)")
    header = f"{'mode':12} {'workers':>8} {'seconds':>9} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['mode']:12} {row['workers']:>8} {row['seconds']:>9.3f} "
            f"{row['speedup_vs_batch']:>7.2f}x"
        )
    path = record_bench(
        "sharding", rows, meta={"smoke": bool(args.smoke), "seed": SEED},
        telemetry=telemetry,
    )
    print(f"recorded -> {path}")
    profile = telemetry.get("round_seconds")
    if profile:
        print(
            f"per-round: p50={profile['p50'] * 1e3:.2f}ms "
            f"p99={profile['p99'] * 1e3:.2f}ms over {profile['count']} rounds; "
            f"shard skew {telemetry.get('shard_skew')}"
        )
    if ctx["cpus"] < MIN_CPUS_FOR_GATE:
        print(
            f"note: only {ctx['cpus']} CPU(s) visible — the >= "
            f"{SPEEDUP_FLOOR}x gate needs {MIN_CPUS_FOR_GATE}+ cores"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
