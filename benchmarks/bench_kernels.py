"""Kernel-backend throughput: per-round seconds, numpy vs compiled.

Times one engine round (wall seconds / rounds executed) for each rule
that has a compiled twin in :mod:`repro.kernels`, at n ∈ {10^4, 10^5}:

* **COBRA** and batch **BIPS** — numpy vs the fused ``numba`` CSR
  kernels (bit-identical, so the comparison is pure wall-clock);
* **push** — numpy vs the word-packed ``bitplane`` rule
  (distribution-equivalent: same per-run law, 64 runs per draw).

Every invocation appends its rows to ``BENCH_kernels.json`` at the
repo root via :mod:`benchmarks.record`.  The pytest gate asserts the
≥ 10× per-round win of the numba kernel over numpy for COBRA at
n = 10^5 — on machines that actually have numba (it auto-skips on the
numpy-only container, mirroring the sharding gate's CPU guard);
backends that are unavailable are skipped with a note, never recorded
as fake rows.

Run with::

    PYTHONPATH=src python benchmarks/bench_kernels.py            # full grid
    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke    # seconds
    PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py -v
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np
import pytest
from record import machine_context, record_bench

from repro.core.branching import make_policy
from repro.engine import BipsRule, CobraRule, PushRule, SpreadEngine
from repro.graphs import random_regular_graph
from repro.kernels import backend_available
from repro.telemetry.compare import KERNEL_GATE_N, KERNEL_SPEEDUP_FLOOR

SIZES = (10_000, 100_000)
RUNS = 32
DEGREE = 8
SEED = 20170724
MAX_ROUNDS = 12
# The gate itself lives in repro.telemetry.compare (evaluate_gates), so
# the bench script, `repro bench compare`, and CI share one floor.
SPEEDUP_FLOOR = KERNEL_SPEEDUP_FLOOR
GATE_N = KERNEL_GATE_N

#: rule key -> (rule factory, compiled backend to compare against numpy)
CELLS = {
    "cobra": (lambda: CobraRule(make_policy(2)), "numba"),
    "bips": (lambda: BipsRule(make_policy(2), 0), "numba"),
    "push": (lambda: PushRule(), "bitplane"),
}


def build_cell(rule_key: str, n: int, runs: int = RUNS):
    """An expander, the rule's engine, and one-hot starts."""
    graph = random_regular_graph(n, DEGREE, rng=1)
    engine = SpreadEngine(CELLS[rule_key][0](), graph)
    state = np.zeros((runs, n), dtype=bool)
    state[:, 0] = True
    return engine, state


def time_backend(
    engine, state, backend: str, *, max_rounds: int = MAX_ROUNDS
) -> tuple[float, int]:
    """Seconds per executed round for one backend (fresh rng per call).

    The round cap keeps the cell in the growth phase where the kernels
    do real work; both backends run the identical cap, so the ratio is
    a fair per-round comparison even when neither reaches completion.
    """
    t0 = time.perf_counter()
    res = engine.run(
        state, np.random.default_rng(SEED), max_rounds=max_rounds, backend=backend
    )
    seconds = time.perf_counter() - t0
    rounds = max(1, int(res.rounds_run))
    return seconds / rounds, rounds


def measure(
    sizes=SIZES, runs: int = RUNS, max_rounds: int = MAX_ROUNDS
) -> tuple[list[dict], list[str]]:
    """Time every rule × size × available backend; one row per cell.

    Returns ``(rows, skipped)`` where ``skipped`` names the backends
    that were unavailable (so callers can print the caveat instead of
    silently shrinking the grid).  Compiled backends get one untimed
    warm-up call per cell before the clock starts, so numba's JIT
    compilation is never billed to the per-round figure.
    """
    rows: list[dict] = []
    skipped: list[str] = []
    for rule_key, (_, compiled) in CELLS.items():
        compiled_ok = backend_available(compiled)
        if not compiled_ok and compiled not in skipped:
            skipped.append(compiled)
        for n in sizes:
            engine, state = build_cell(rule_key, n, runs)
            base_spr, base_rounds = time_backend(
                engine, state, "numpy", max_rounds=max_rounds
            )
            rows.append(
                {
                    "rule": rule_key,
                    "backend": "numpy",
                    "n": n,
                    "runs": runs,
                    "rounds": base_rounds,
                    "seconds_per_round": round(base_spr, 6),
                    "speedup_vs_numpy": 1.0,
                }
            )
            if not compiled_ok:
                continue
            # Warm-up: compile (numba) / allocate (bitplane) off the clock.
            time_backend(engine, state, compiled, max_rounds=2)
            spr, rounds = time_backend(
                engine, state, compiled, max_rounds=max_rounds
            )
            rows.append(
                {
                    "rule": rule_key,
                    "backend": compiled,
                    "n": n,
                    "runs": runs,
                    "rounds": rounds,
                    "seconds_per_round": round(spr, 6),
                    "speedup_vs_numpy": round(base_spr / spr, 3),
                }
            )
    return rows, skipped


def gate_speedup(rows: list[dict], rule: str, backend: str, n: int) -> float:
    """The recorded speedup for one (rule, backend, n) cell."""
    for row in rows:
        if row["rule"] == rule and row["backend"] == backend and row["n"] == n:
            return row["speedup_vs_numpy"]
    raise KeyError(f"no recorded row for {rule}/{backend} at n={n}")


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_backend_rows_cover_numpy_baseline():
    """Cheap shape gate: every cell records a numpy baseline row."""
    rows, _ = measure(sizes=(2048,), runs=8, max_rounds=4)
    numpy_rules = {r["rule"] for r in rows if r["backend"] == "numpy"}
    assert numpy_rules == set(CELLS)


@pytest.mark.skipif(
    not backend_available("numba"),
    reason="compiled-kernel gate needs numba installed",
)
def test_kernel_speedup_gate():
    """Acceptance gate: >= 10x per-round for COBRA under numba at n=1e5.

    Recorded first, then asserted through the comparator's
    ``evaluate_gates`` — the same code path ``repro bench compare``
    runs on every committed entry.
    """
    from repro.telemetry import evaluate_gates, load_bench

    rows, _ = measure(sizes=(GATE_N,))
    path = record_bench(
        "kernels", rows, meta={"gate": f">={SPEEDUP_FLOOR}x", "seed": SEED}
    )
    gates = evaluate_gates(load_bench(path))
    assert gates, "kernel gate did not evaluate on the recorded entry"
    failed = [g for g in gates if g.regressed]
    assert not failed, f"kernel gate failed: {failed}; rows: {rows}"


# ----------------------------------------------------------------------
# script entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    """Measure, print the table, and append to BENCH_kernels.json."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(SIZES),
        help="graph sizes to time (default: 10000 100000)",
    )
    parser.add_argument("--runs", type=int, default=RUNS)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid (n=4096, R=8, 4 rounds) for CI smoke runs",
    )
    args = parser.parse_args(argv)
    sizes, runs, max_rounds = (
        ((4096,), 8, 4) if args.smoke else (tuple(args.sizes), args.runs, MAX_ROUNDS)
    )

    rows, skipped = measure(sizes, runs, max_rounds)
    ctx = machine_context()
    print(
        f"kernel backends on rreg-{DEGREE}-n, R={runs}, "
        f"{max_rounds}-round cells ({ctx['cpus']} CPUs)"
    )
    header = f"{'rule':7} {'backend':9} {'n':>7} {'s/round':>10} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['rule']:7} {row['backend']:9} {row['n']:>7} "
            f"{row['seconds_per_round']:>10.6f} "
            f"{row['speedup_vs_numpy']:>7.2f}x"
        )
    path = record_bench(
        "kernels",
        rows,
        meta={
            "smoke": bool(args.smoke),
            "seed": SEED,
            "gate": f">={SPEEDUP_FLOOR}x cobra/numba at n>={GATE_N}",
            "skipped_backends": skipped,
        },
    )
    print(f"recorded -> {path}")
    if skipped:
        print(
            f"note: backend(s) {skipped} unavailable here — their rows "
            f"were skipped and the >= {SPEEDUP_FLOOR:g}x gate does not run"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
