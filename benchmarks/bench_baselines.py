"""Baseline sampling throughput: scalar loops vs the batched engine.

Three implementation rungs are compared for push, pull and flooding,
on a random 8-regular expander and a 2-D torus at ``n = 4096``:

* **scalar** — the textbook one-run-at-a-time implementation with a
  Python-level loop over acting vertices, one ``Generator`` call per
  neighbour selection.  This is the "scalar Python loop" rung the
  engine layer replaces; it is timed on a handful of runs and reported
  as per-run throughput.
* **per-run vectorised** — one run at a time, each round one
  vectorised ``sample_neighbors`` call.  This is an *idealised* form
  of the pre-engine samplers (stripped of their per-run connectivity
  revalidation and dispatch overhead) and is reported for
  transparency, not gated: at ``n = 4096`` its rounds are already
  array-sized, so it can match or beat the batched engine on
  push/pull — both are bound by the same neighbour-sampling work.
  Against the *actual* replaced samplers, batching measured 2–4×
  faster at experiment scale (``n ≤ 1024``, the E9 regime) and parity
  at ``n = 4096``.
* **batched engine** — all 256 runs advance inside one ``(R, n)``
  boolean program via :mod:`repro.engine`.

The acceptance gate asserts the batched engine beats the scalar rung
by ≥ 10× per-run on every protocol/graph cell.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_baselines.py -v
    PYTHONPATH=src python benchmarks/bench_baselines.py   # table output
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines import (
    flooding_broadcast_times,
    pull_broadcast_samples,
    push_broadcast_samples,
)
from repro.graphs import random_regular_graph, torus_graph
from repro.graphs.properties import eccentricity

N = 4096
BATCH_RUNS = 256
SCALAR_RUNS = 4
SPEEDUP_FLOOR = 10.0


def _graphs():
    return {
        "expander": random_regular_graph(N, 8, rng=1),
        "torus": torus_graph([64, 64]),
    }


# ----------------------------------------------------------------------
# Scalar rung: textbook per-vertex Python loops
# ----------------------------------------------------------------------
def scalar_push_time(graph, start, rng):
    """One push broadcast, one Generator call per sender per round."""
    indptr, indices, degrees = graph.indptr, graph.indices, graph.degrees
    informed = np.zeros(graph.n, dtype=bool)
    informed[start] = True
    t = 0
    while not informed.all():
        t += 1
        for v in np.nonzero(informed)[0]:
            informed[indices[indptr[v] + int(rng.integers(degrees[v]))]] = True
    return t


def scalar_pull_time(graph, start, rng):
    """One pull broadcast, one Generator call per asker per round."""
    indptr, indices, degrees = graph.indptr, graph.indices, graph.degrees
    informed = np.zeros(graph.n, dtype=bool)
    informed[start] = True
    t = 0
    while not informed.all():
        t += 1
        before = informed.copy()
        for v in np.nonzero(~before)[0]:
            if before[indices[indptr[v] + int(rng.integers(degrees[v]))]]:
                informed[v] = True
    return t


def scalar_flooding_time(graph, start):
    """One flooding broadcast as a Python frontier loop."""
    indptr, indices = graph.indptr, graph.indices
    informed = np.zeros(graph.n, dtype=bool)
    informed[start] = True
    frontier = [start]
    t = 0
    while frontier:
        nxt = []
        for v in frontier:
            for w in indices[indptr[v] : indptr[v + 1]]:
                if not informed[w]:
                    informed[w] = True
                    nxt.append(int(w))
        frontier = nxt
        if frontier:
            t += 1
    return t


# ----------------------------------------------------------------------
# Per-run vectorised rung (the pre-engine implementations)
# ----------------------------------------------------------------------
def perrun_push_samples(graph, runs, rng):
    """Pre-engine push sampler: vectorised rounds, one run at a time."""
    out = np.empty(runs, dtype=np.int64)
    for i in range(runs):
        informed = np.zeros(graph.n, dtype=bool)
        informed[0] = True
        t = 0
        while not informed.all():
            t += 1
            senders = np.nonzero(informed)[0]
            informed[graph.sample_neighbors(senders, rng)] = True
        out[i] = t
    return out


def perrun_pull_samples(graph, runs, rng):
    """Pre-engine pull sampler: vectorised rounds, one run at a time."""
    out = np.empty(runs, dtype=np.int64)
    for i in range(runs):
        informed = np.zeros(graph.n, dtype=bool)
        informed[0] = True
        t = 0
        while not informed.all():
            t += 1
            askers = np.nonzero(~informed)[0]
            informed[askers] |= informed[graph.sample_neighbors(askers, rng)]
        out[i] = t
    return out


def perrun_flooding_times(graph, starts):
    """Pre-engine flooding: one vectorised BFS per start."""
    return np.array([eccentricity(graph, int(s)) for s in starts])


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _per_run_seconds(fn, runs):
    t0 = time.perf_counter()
    fn()
    return (time.perf_counter() - t0) / runs


def measure_cell(graph, protocol):
    """Return per-run seconds for each rung of one protocol/graph cell."""
    rng = np.random.default_rng(7)
    if protocol == "push":
        scalar = _per_run_seconds(
            lambda: [scalar_push_time(graph, 0, rng) for _ in range(SCALAR_RUNS)],
            SCALAR_RUNS,
        )
        perrun = _per_run_seconds(
            lambda: perrun_push_samples(graph, 16, rng), 16
        )
        batched = _per_run_seconds(
            lambda: push_broadcast_samples(graph, runs=BATCH_RUNS, rng=3),
            BATCH_RUNS,
        )
    elif protocol == "pull":
        scalar = _per_run_seconds(
            lambda: [scalar_pull_time(graph, 0, rng) for _ in range(SCALAR_RUNS)],
            SCALAR_RUNS,
        )
        perrun = _per_run_seconds(
            lambda: perrun_pull_samples(graph, 16, rng), 16
        )
        batched = _per_run_seconds(
            lambda: pull_broadcast_samples(graph, runs=BATCH_RUNS, rng=3),
            BATCH_RUNS,
        )
    else:
        starts = np.arange(BATCH_RUNS, dtype=np.int64) % graph.n
        scalar = _per_run_seconds(
            lambda: [scalar_flooding_time(graph, int(s)) for s in starts[:SCALAR_RUNS]],
            SCALAR_RUNS,
        )
        perrun = _per_run_seconds(
            lambda: perrun_flooding_times(graph, starts[:16]), 16
        )
        batched = _per_run_seconds(
            lambda: flooding_broadcast_times(graph, starts), BATCH_RUNS
        )
    return scalar, perrun, batched


@pytest.mark.parametrize("family", ["expander", "torus"])
@pytest.mark.parametrize("protocol", ["push", "pull", "flooding"])
def test_batched_speedup(family, protocol):
    """Acceptance gate: batched ≥ 10× over the scalar loop, per run."""
    graph = _graphs()[family]
    scalar, perrun, batched = measure_cell(graph, protocol)
    speedup = scalar / batched
    print(
        f"{family}/{protocol}: scalar {scalar * 1e3:.2f} ms/run, "
        f"per-run-vec {perrun * 1e3:.2f} ms/run, "
        f"batched {batched * 1e3:.3f} ms/run -> {speedup:.1f}x vs scalar"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"{family}/{protocol}: batched engine only {speedup:.1f}x faster "
        f"than the scalar loop (floor {SPEEDUP_FLOOR}x)"
    )


def main():
    """Print the full comparison table (script entry point)."""
    print(f"n={N}, batched runs={BATCH_RUNS} (per-run milliseconds)")
    header = f"{'cell':22} {'scalar':>10} {'per-run vec':>12} {'batched':>10} {'speedup':>9}"
    print(header)
    print("-" * len(header))
    for family, graph in _graphs().items():
        for protocol in ("push", "pull", "flooding"):
            scalar, perrun, batched = measure_cell(graph, protocol)
            print(
                f"{family + '/' + protocol:22} {scalar * 1e3:10.2f} "
                f"{perrun * 1e3:12.2f} {batched * 1e3:10.3f} "
                f"{scalar / batched:8.1f}x"
            )


if __name__ == "__main__":
    main()
