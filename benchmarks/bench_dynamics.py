"""Dynamics microbenchmarks: per-round cost of the evolving-graph layer.

Companions to ``bench_engines.py``: these time one topology transition
per provider (edge-Markovian resampling, rewiring swap round, churn
wave) and one ``DynamicCobraProcess`` round, so regressions in the
sequence substrate are caught independently of the E16 pipeline.
"""

import numpy as np
import pytest

from repro.dynamics import (
    ChurnSequence,
    DynamicCobraProcess,
    EdgeMarkovianSequence,
    FrozenSequence,
    RewiringSequence,
)
from repro.graphs import random_regular_graph


@pytest.fixture(scope="module")
def base():
    return random_regular_graph(1024, 8, rng=1)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(2)


def _advance_round(sequence):
    """Time one fresh transition (monotonically increasing round)."""
    state = {"t": 0}

    def step():
        state["t"] += 1
        return sequence.graph_at(state["t"])

    return step


def test_bench_edge_markovian_round(benchmark, base):
    seq = EdgeMarkovianSequence(base, birth=0.001, death=0.05, seed=3)
    benchmark(_advance_round(seq))


def test_bench_rewiring_round(benchmark, base):
    seq = RewiringSequence(base, swaps_per_round=64, seed=3)
    benchmark(_advance_round(seq))


def test_bench_churn_round(benchmark, base):
    seq = ChurnSequence(base, leave=0.05, rejoin=0.3, seed=3)
    benchmark(_advance_round(seq))


def test_bench_dynamic_cobra_step_frozen(benchmark, base, rng):
    """Runner overhead over the static kernel (snapshot + proc cached)."""
    proc = DynamicCobraProcess(FrozenSequence(base))
    active = np.unique(rng.integers(0, base.n, size=base.n // 2))
    benchmark(proc.step_at, 0, active, rng)


def test_bench_dynamic_cobra_step_rewiring(benchmark, base, rng):
    seq = RewiringSequence(base, swaps_per_round=64, seed=3)
    proc = DynamicCobraProcess(seq)
    active = np.unique(rng.integers(0, base.n, size=base.n // 2))
    state = {"t": 0}

    def step():
        state["t"] += 1
        return proc.step_at(state["t"], active, rng)

    benchmark(step)


def test_bench_dynamic_cobra_full_cover(benchmark, base):
    seq = RewiringSequence(base, swaps_per_round=32, seed=5)
    proc = DynamicCobraProcess(seq)

    def run():
        return proc.run(0, np.random.default_rng(7)).cover_time

    t = benchmark(run)
    assert t >= 3
