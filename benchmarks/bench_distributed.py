"""Distributed-engine throughput: broker/worker fan-out vs local sharding.

Times COBRA cover sampling on a random regular graph three ways:

* **local** — ``run_sharded(workers=1)``, the serial shard-by-shard
  reference every distributed result must equal bit-for-bit;
* **tcp** — ``run_distributed`` through a localhost broker with
  ``--workers`` worker processes attached, cold result cache (the full
  wire + queue + compute path);
* **tcp+cache** — the identical invocation again, now fully served
  from the content-addressed result cache (measures the cache
  fast-path; no shard executes, and with every shard cached the
  client never even dials the broker).

Every invocation appends ``(n, R, workers, transport, seconds)`` rows
to ``BENCH_distributed.json`` at the repo root via
:mod:`benchmarks.record`, building the cross-PR perf trajectory.  The
pytest gates assert the bit-identity contract and that the warm cache
beats the cold path — robust on any machine, unlike wall-clock
speedups on 1-CPU containers.

Run with::

    PYTHONPATH=src python benchmarks/bench_distributed.py            # full cell
    PYTHONPATH=src python benchmarks/bench_distributed.py --smoke    # seconds
    PYTHONPATH=src python -m pytest benchmarks/bench_distributed.py -v
"""

from __future__ import annotations

import argparse
import multiprocessing as mp
import sys
import tempfile
import time

import numpy as np
from record import machine_context, record_bench

from repro.core.branching import make_policy
from repro.distributed import Broker, ResultCache
from repro.distributed.worker import run_worker
from repro.engine import CobraRule, SpreadEngine
from repro.graphs import random_regular_graph

N = 4096
RUNS = 512
DEGREE = 8
SEED = 20170724
WORKERS = 2
MAX_SHARD = 64


def build_cell(n: int = N, runs: int = RUNS):
    """The benchmark cell: an expander, a COBRA engine, one-hot starts."""
    graph = random_regular_graph(n, DEGREE, rng=1)
    engine = SpreadEngine(CobraRule(make_policy(2)), graph)
    state = np.zeros((runs, n), dtype=bool)
    state[:, 0] = True
    return graph, engine, state


def _spawn_workers(address: str, count: int) -> list:
    ctx = mp.get_context("fork")
    procs = [
        ctx.Process(
            target=run_worker,
            args=(address,),
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        for _ in range(count)
    ]
    for proc in procs:
        proc.start()
    return procs


def measure(
    n: int = N,
    runs: int = RUNS,
    workers: int = WORKERS,
    max_shard: int = MAX_SHARD,
) -> tuple[list[dict], dict]:
    """Measure local vs tcp vs tcp+cache; returns (rows, results).

    ``results`` maps transport name to the sampled finish times, so
    the caller (and the pytest gate) can assert bit-identity across
    every transport.
    """
    _, engine, state = build_cell(n, runs)
    rows: list[dict] = []
    results: dict[str, np.ndarray] = {}

    t0 = time.perf_counter()
    local = engine.run_sharded(state, SEED, workers=1, max_shard=max_shard)
    local_seconds = time.perf_counter() - t0
    rows.append(
        {
            "n": n,
            "R": runs,
            "workers": 1,
            "transport": "local",
            "seconds": round(local_seconds, 4),
        }
    )
    results["local"] = local.finish_times

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        with Broker(lease_timeout=60.0) as broker:
            procs = _spawn_workers(broker.address, workers)
            try:
                t0 = time.perf_counter()
                cold = engine.run_distributed(
                    state,
                    SEED,
                    endpoint=broker.address,
                    max_shard=max_shard,
                    cache=cache,
                )
                cold_seconds = time.perf_counter() - t0

                t0 = time.perf_counter()
                warm = engine.run_distributed(
                    state,
                    SEED,
                    endpoint=broker.address,
                    max_shard=max_shard,
                    cache=cache,
                )
                warm_seconds = time.perf_counter() - t0
            finally:
                for proc in procs:
                    proc.terminate()
                for proc in procs:
                    proc.join(timeout=5)
    rows.append(
        {
            "n": n,
            "R": runs,
            "workers": workers,
            "transport": "tcp",
            "seconds": round(cold_seconds, 4),
        }
    )
    rows.append(
        {
            "n": n,
            "R": runs,
            "workers": workers,
            "transport": "tcp+cache",
            "seconds": round(warm_seconds, 4),
        }
    )
    results["tcp"] = cold.finish_times
    results["tcp+cache"] = warm.finish_times
    return rows, results


def check_identity(results: dict) -> None:
    """Every transport must reproduce the local reference exactly."""
    for transport, times in results.items():
        if not np.array_equal(times, results["local"]):
            raise AssertionError(
                f"{transport} samples differ from the local reference — "
                "distributed determinism contract broken"
            )


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_distributed_bit_identity_smoke():
    """Gate: broker + 2 workers reproduce run_sharded(workers=1) exactly."""
    rows, results = measure(n=512, runs=96, workers=2, max_shard=16)
    check_identity(results)
    record_bench(
        "distributed", rows, meta={"cell": "smoke", "gate": "bit-identity"}
    )


def test_warm_cache_beats_cold_path():
    """Gate: the content-addressed cache short-circuits recomputation."""
    rows, results = measure(n=512, runs=96, workers=2, max_shard=16)
    check_identity(results)
    by_transport = {r["transport"]: r["seconds"] for r in rows}
    assert by_transport["tcp+cache"] <= by_transport["tcp"], rows


# ----------------------------------------------------------------------
# script entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    """Measure, print the table, and append to BENCH_distributed.json."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=N)
    parser.add_argument("--runs", type=int, default=RUNS)
    parser.add_argument("--workers", type=int, default=WORKERS)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny cell (n=1024, R=128, max_shard=32) for CI smoke runs",
    )
    args = parser.parse_args(argv)
    n, runs, max_shard = (
        (1024, 128, 32) if args.smoke else (args.n, args.runs, MAX_SHARD)
    )

    rows, results = measure(n, runs, args.workers, max_shard=max_shard)
    check_identity(results)
    ctx = machine_context()
    print(
        f"COBRA b=2 on rreg-{DEGREE}-{n}, R={runs}, broker+{args.workers} "
        f"workers over localhost ({ctx['cpus']} CPUs)"
    )
    header = f"{'transport':12} {'workers':>8} {'seconds':>9}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['transport']:12} {row['workers']:>8} {row['seconds']:>9.4f}")
    path = record_bench(
        "distributed",
        rows,
        meta={"cell": "smoke" if args.smoke else "full", "gate": "bit-identity"},
    )
    print(f"\nbit-identity: ok; appended to {path.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
