"""Benchmark: Table 3 — regular bound (Theorem 1.2) (experiment E3).

Regenerates the experiment's table(s) under timing and asserts its
shape criteria (see DESIGN.md experiment index).
"""

from conftest import run_and_check


def test_bench_e03(benchmark):
    result = benchmark.pedantic(
        run_and_check, args=("E3",), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.all_passed
    assert result.tables
