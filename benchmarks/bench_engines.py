"""Engine microbenchmarks: per-round throughput of the hot paths.

These measure the vectorised kernels the experiment suite is built on —
one COBRA round, one BIPS round (single and batched), neighbour
sampling, the unified ``(R, n)`` engine's rule kernels, and the
spectral solve — so performance regressions in the substrate are
caught independently of the experiment pipelines.
"""

import numpy as np
import pytest

from repro.core import BipsProcess, CobraProcess
from repro.core.branching import FixedBranching
from repro.dynamics import RewiringSequence
from repro.engine import (
    CobraRule,
    FloodingRule,
    PullRule,
    PushRule,
    SpreadEngine,
    WalkRule,
)
from repro.graphs import hypercube_graph, random_regular_graph, second_eigenvalue


@pytest.fixture(scope="module")
def expander():
    return random_regular_graph(4096, 8, rng=1)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(2)


def test_bench_neighbor_sampling(benchmark, expander, rng):
    verts = rng.integers(0, expander.n, size=100_000)
    benchmark(expander.sample_neighbors, verts, rng)


def test_bench_cobra_round_large_front(benchmark, expander, rng):
    proc = CobraProcess(expander)
    active = np.unique(rng.integers(0, expander.n, size=expander.n // 2))
    benchmark(proc.step, active, rng)


def test_bench_bips_round(benchmark, expander, rng):
    proc = BipsProcess(expander, 0)
    infected = rng.random(expander.n) < 0.3
    infected[0] = True
    benchmark(proc.step, infected, rng)


def test_bench_bips_batch_round(benchmark, expander, rng):
    proc = BipsProcess(expander, 0)
    infected = rng.random((64, expander.n)) < 0.3
    infected[:, 0] = True
    benchmark(proc.step_batch, infected, rng)


def test_bench_cobra_full_cover(benchmark, rng):
    g = hypercube_graph(10)
    proc = CobraProcess(g, lazy=True)

    def run():
        return proc.run(0, rng).cover_time

    t = benchmark(run)
    assert t >= 10  # log2(1024)


def test_bench_spectral_gap(benchmark):
    g = random_regular_graph(1024, 8, rng=3)
    lam = benchmark(second_eigenvalue, g)
    assert 0.0 < lam < 1.0


# ----------------------------------------------------------------------
# Unified (R, n) engine: one step of each rule kernel, and full batches
# ----------------------------------------------------------------------
def _informed_state(rng, runs, n, fill):
    state = rng.random((runs, n)) < fill
    state[:, 0] = True
    return state


def test_bench_engine_cobra_step(benchmark, expander, rng):
    rule = CobraRule(FixedBranching(2))
    state = _informed_state(rng, 64, expander.n, 0.3)
    alive = np.ones(64, dtype=bool)
    benchmark(rule.step, expander, state, alive, rng)


def test_bench_engine_push_step(benchmark, expander, rng):
    rule = PushRule()
    state = _informed_state(rng, 64, expander.n, 0.3)
    alive = np.ones(64, dtype=bool)
    benchmark(rule.step, expander, state, alive, rng)


def test_bench_engine_pull_step(benchmark, expander, rng):
    rule = PullRule()
    state = _informed_state(rng, 64, expander.n, 0.3)
    alive = np.ones(64, dtype=bool)
    benchmark(rule.step, expander, state, alive, rng)


def test_bench_engine_walk_step(benchmark, expander, rng):
    rule = WalkRule(8)
    state = rng.integers(0, expander.n, size=(64, 8))
    alive = np.ones(64, dtype=bool)
    benchmark(rule.step, expander, state, alive, rng)


def test_bench_engine_flooding_batch(benchmark, expander):
    rule = FloodingRule(runs=256)
    engine = SpreadEngine(rule, expander)
    mask = np.zeros((256, expander.n), dtype=bool)
    mask[np.arange(256), np.arange(256)] = True
    state = rule.pack(mask)

    def run():
        return engine.run(state, np.random.default_rng(0)).rounds_run

    rounds = benchmark(run)
    assert rounds >= 3


def test_bench_engine_dynamic_batch(benchmark):
    base = random_regular_graph(512, 4, rng=5)
    rule = CobraRule(FixedBranching(2))

    def run():
        seq = RewiringSequence(base, 16, seed=9)
        engine = SpreadEngine(rule, seq)
        state = np.zeros((64, base.n), dtype=bool)
        state[:, 0] = True
        return engine.run(state, np.random.default_rng(1)).all_finished

    assert benchmark(run)
