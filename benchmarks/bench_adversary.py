"""Adversarial-dynamics throughput: cover-time cost of the adversary.

Times per-run adversarial COBRA cover sampling on a random regular
expander across the adversary catalogue and a greedy-cut budget sweep,
appending ``(n, R, adversary, budget, seconds, cover_rounds)`` rows to
``BENCH_adversary.json`` at the repo root via :mod:`benchmarks.record`
— the cross-PR perf trajectory for the observation-protocol hot path.

The pytest gates assert the subsystem's two robust contracts rather
than wall-clock numbers: the budget-0 greedy-cut run reproduces the
oblivious :class:`~repro.dynamics.RewiringSequence` samples
bit-for-bit, and raising the greedy-cut budget never speeds cover up.

Run with::

    PYTHONPATH=src python benchmarks/bench_adversary.py            # full cell
    PYTHONPATH=src python benchmarks/bench_adversary.py --smoke    # seconds
    PYTHONPATH=src python -m pytest benchmarks/bench_adversary.py -v
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np
from record import machine_context, record_bench

from repro.adversary import AdversarialSequence, make_adversary
from repro.dynamics import RewiringSequence, dynamic_cover_time_samples
from repro.graphs import random_regular_graph

N = 256
RUNS = 64
DEGREE = 4
SEED = 20170724
OBLIVIOUS_RATE = 0.1
BUDGETS = (0, 2, 8, 32)
KINDS = ("greedy-cut", "isolating-churn", "adaptive-rri")
CATALOGUE_BUDGET = 8


def _factory(base, kind, budget):
    swaps = max(1, round(OBLIVIOUS_RATE * base.m))
    return lambda topology_seed: AdversarialSequence(
        base, make_adversary(kind, budget), topology_seed, swaps_per_round=swaps
    )


def measure(n: int = N, runs: int = RUNS) -> tuple[list[dict], dict]:
    """Time the budget sweep + catalogue; returns (rows, samples).

    ``samples`` maps ``(adversary, budget)`` to the sampled cover
    times, so the pytest gates can assert the anchoring and
    monotonicity contracts on exactly the recorded cells.
    """
    base = random_regular_graph(n, DEGREE, rng=1)
    rows: list[dict] = []
    samples: dict[tuple[str, int], np.ndarray] = {}

    def cell(kind, budget, factory, completion="all-vertices"):
        t0 = time.perf_counter()
        times = dynamic_cover_time_samples(
            factory, runs, seed=SEED, completion=completion
        )
        seconds = time.perf_counter() - t0
        samples[(kind, budget)] = times
        rows.append(
            {
                "n": n,
                "R": runs,
                "adversary": kind,
                "budget": budget,
                "seconds": round(seconds, 4),
                "cover_rounds": round(float(times.mean()), 2),
            }
        )

    swaps = max(1, round(OBLIVIOUS_RATE * base.m))
    cell(
        "oblivious",
        0,
        lambda topology_seed: RewiringSequence(base, swaps, seed=topology_seed),
    )
    for budget in BUDGETS:
        cell("greedy-cut", budget, _factory(base, "greedy-cut", budget))
    cell(
        "isolating-churn",
        CATALOGUE_BUDGET,
        _factory(base, "isolating-churn", CATALOGUE_BUDGET),
        completion="all-active",
    )
    cell(
        "adaptive-rri",
        CATALOGUE_BUDGET,
        _factory(base, "adaptive-rri", CATALOGUE_BUDGET),
    )
    return rows, samples


def check_contracts(samples: dict) -> None:
    """Budget-0 anchors the oblivious baseline; budget never helps."""
    if not np.array_equal(
        samples[("greedy-cut", 0)], samples[("oblivious", 0)]
    ):
        raise AssertionError(
            "budget-0 greedy-cut differs from the oblivious RewiringSequence "
            "— the anchoring contract is broken"
        )
    curve = [float(samples[("greedy-cut", b)].mean()) for b in BUDGETS]
    if curve[-1] < curve[0]:
        raise AssertionError(
            f"top greedy-cut budget sped cover up ({curve}) — the "
            "adversary is not adversarial"
        )


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_adversary_contracts_smoke():
    """Gate: oblivious anchor + budget monotonicity on a tiny cell."""
    rows, samples = measure(n=48, runs=16)
    check_contracts(samples)
    record_bench(
        "adversary", rows, meta={"cell": "smoke", "gate": "anchor+monotone"}
    )


# ----------------------------------------------------------------------
# script entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    """Measure, print the table, and append to BENCH_adversary.json."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=N)
    parser.add_argument("--runs", type=int, default=RUNS)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny cell (n=48, R=16) for CI smoke runs",
    )
    args = parser.parse_args(argv)
    n, runs = (48, 16) if args.smoke else (args.n, args.runs)

    rows, samples = measure(n, runs)
    check_contracts(samples)
    ctx = machine_context()
    print(
        f"adversarial COBRA b=2 on rreg-{DEGREE}-{n}, R={runs} per cell "
        f"({ctx['cpus']} CPUs)"
    )
    header = f"{'adversary':16} {'budget':>7} {'seconds':>9} {'cover_rounds':>13}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['adversary']:16} {row['budget']:>7} {row['seconds']:>9.4f} "
            f"{row['cover_rounds']:>13.2f}"
        )
    path = record_bench(
        "adversary",
        rows,
        meta={"cell": "smoke" if args.smoke else "full", "gate": "anchor+monotone"},
    )
    print(f"\nanchor + monotonicity: ok; appended to {path.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
