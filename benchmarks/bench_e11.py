"""Benchmark: Figure 7 — family scaling panel (experiment E11).

Regenerates the experiment's table(s) under timing and asserts its
shape criteria (see DESIGN.md experiment index).
"""

from conftest import run_and_check


def test_bench_e11(benchmark):
    result = benchmark.pedantic(
        run_and_check, args=("E11",), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.all_passed
    assert result.tables
