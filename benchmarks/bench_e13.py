"""Benchmark: Ablation 1 — lazy vs non-lazy COBRA (experiment E13).

Regenerates the experiment's table(s) under timing and asserts its
shape criteria (see DESIGN.md experiment index).
"""

from conftest import run_and_check


def test_bench_e13(benchmark):
    result = benchmark.pedantic(
        run_and_check, args=("E13",), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.all_passed
    assert result.tables
