"""Benchmark: dynamic-graph cover/infection sweep (experiment E16).

Regenerates the experiment's table(s) under timing and asserts its
shape criteria (see DESIGN.md experiment index).
"""

from conftest import run_and_check


def test_bench_e16(benchmark):
    result = benchmark.pedantic(
        run_and_check, args=("E16",), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.all_passed
    assert result.tables
