"""Shared benchmark helpers.

Each ``bench_eNN.py`` regenerates one of the paper's tables/figures (as
defined in DESIGN.md) under pytest-benchmark timing.  The benchmarked
callable is the experiment's full measurement pipeline at ``quick``
scale; each bench also asserts the experiment's shape checks so a
benchmark run doubles as a reproduction audit.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, run_experiment

BENCH_CONFIG = ExperimentConfig(scale="quick", seed=20170724)


def run_and_check(experiment_id: str):
    """Run one experiment and fail the bench if any shape check fails."""
    result = run_experiment(experiment_id, BENCH_CONFIG)
    failing = [c for c in result.checks if not c.passed]
    assert not failing, f"{experiment_id} checks failed: {[str(c) for c in failing]}"
    return result


@pytest.fixture
def bench_config() -> ExperimentConfig:
    return BENCH_CONFIG
