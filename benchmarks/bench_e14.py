"""Benchmark: Ablation 2 — branching factor beyond 2 (experiment E14).

Regenerates the experiment's table(s) under timing and asserts its
shape criteria (see DESIGN.md experiment index).
"""

from conftest import run_and_check


def test_bench_e14(benchmark):
    result = benchmark.pedantic(
        run_and_check, args=("E14",), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.all_passed
    assert result.tables
