"""Design-choice ablation benchmarks (DESIGN.md section 5).

Times the alternatives behind the library's two main engine decisions:

* batched multi-run COBRA vs a Python loop of single runs — the
  vectorised batch engine is the design DESIGN.md commits to;
* dense vs sparse spectral path around the `_DENSE_LIMIT` crossover.
"""

import numpy as np
import pytest

from repro.core import CobraProcess
from repro.graphs import random_regular_graph
from repro.graphs.spectral import random_walk_spectrum, second_eigenvalue


@pytest.fixture(scope="module")
def graph():
    return random_regular_graph(512, 8, rng=7)


RUNS = 64


def test_bench_cover_batched(benchmark, graph):
    proc = CobraProcess(graph)

    def run():
        rng = np.random.default_rng(1)
        return proc.run_batch(np.zeros(RUNS, dtype=np.int64), rng).cover_times

    times = benchmark(run)
    assert times.shape == (RUNS,)
    assert np.all(times > 0)


def test_bench_cover_single_loop(benchmark, graph):
    proc = CobraProcess(graph)

    def run():
        rng = np.random.default_rng(1)
        return np.array([proc.run(0, rng).cover_time for _ in range(RUNS)])

    times = benchmark(run)
    assert times.shape == (RUNS,)


def test_bench_spectral_dense(benchmark):
    g = random_regular_graph(512, 8, rng=3)  # below the dense limit
    val = benchmark(lambda: float(np.abs(random_walk_spectrum(g)[1])))
    assert 0 < val < 1


def test_bench_spectral_sparse(benchmark):
    g = random_regular_graph(768, 8, rng=3)  # above the dense limit
    val = benchmark(second_eigenvalue, g)
    assert 0 < val < 1
