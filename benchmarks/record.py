"""Perf-trajectory recording: append benchmark runs to ``BENCH_*.json``.

Each benchmark that wants a persistent trajectory calls
:func:`record_bench` with its measurement rows; the helper appends an
entry (rows + machine context + timestamp) to ``BENCH_<name>.json`` at
the repository root, so successive PRs accumulate a regression
trajectory instead of overwriting each other.

Format::

    {
      "bench": "sharding",
      "entries": [
        {"timestamp": "...", "machine": {"cpus": 8, "python": "3.11.7"},
         "meta": {...}, "rows": [{...}, ...],
         "telemetry": {...}},            # optional: see telemetry_summary
        ...
      ]
    }

``telemetry`` (when a benchmark passes one) carries the run's
observability digest — per-round latency percentiles, shard timing
skew, counter totals — produced by :func:`telemetry_summary` from the
:mod:`repro.telemetry` registry, so BENCH files double as a perf
dashboard substrate.
"""

from __future__ import annotations

import json
import os
import platform
from datetime import datetime, timezone
from pathlib import Path

#: Repository root (the parent of ``benchmarks/``): where BENCH_*.json live.
REPO_ROOT = Path(__file__).resolve().parent.parent


def machine_context() -> dict:
    """CPU count + python version, attached to every recorded entry."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    return {"cpus": cpus, "python": platform.python_version()}


def telemetry_summary(extra: dict | None = None) -> dict:
    """Digest the global telemetry registry for a bench entry.

    Counters plus per-histogram count/mean/p50/p90/p99/max — run the
    instrumented pass with a real sink (``configure(MemorySink())``)
    so per-round engine observations actually aggregate, then call
    this before resetting.  ``extra`` merges benchmark-specific
    observations (e.g. shard timing skew) into the digest.

    The returned digest is canonical (sorted keys, stable float
    rounding via :func:`repro.telemetry.baseline.canonical_digest`),
    so identical runs produce byte-identical BENCH telemetry blocks
    that ``repro bench compare`` can diff exactly.
    """
    from repro.telemetry import get_telemetry
    from repro.telemetry.baseline import canonical_digest

    digest = get_telemetry().snapshot()
    if extra:
        digest.update(extra)
    return canonical_digest(digest)


def record_bench(
    name: str,
    rows: list[dict],
    *,
    meta: dict | None = None,
    telemetry: dict | None = None,
    root: Path | str | None = None,
) -> Path:
    """Append one benchmark entry to ``BENCH_<name>.json``; returns the path.

    ``rows`` is the run's measurement table (list of flat dicts);
    ``meta`` is optional run-level context (parameters, gate results);
    ``telemetry`` is an optional observability digest (see
    :func:`telemetry_summary`), attached only when provided so
    historical entries keep their shape.
    """
    path = Path(root or REPO_ROOT) / f"BENCH_{name}.json"
    if path.exists():
        payload = json.loads(path.read_text())
        if payload.get("bench") != name:
            raise ValueError(f"{path} records bench {payload.get('bench')!r}")
    else:
        payload = {"bench": name, "entries": []}
    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": machine_context(),
        "meta": meta or {},
        "rows": rows,
    }
    if telemetry is not None:
        entry["telemetry"] = telemetry
    payload["entries"].append(entry)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
