"""Perf-trajectory recording: append benchmark runs to ``BENCH_*.json``.

Each benchmark that wants a persistent trajectory calls
:func:`record_bench` with its measurement rows; the helper appends an
entry (rows + machine context + timestamp) to ``BENCH_<name>.json`` at
the repository root, so successive PRs accumulate a regression
trajectory instead of overwriting each other.

Format::

    {
      "bench": "sharding",
      "entries": [
        {"timestamp": "...", "machine": {"cpus": 8, "python": "3.11.7"},
         "meta": {...}, "rows": [{...}, ...]},
        ...
      ]
    }
"""

from __future__ import annotations

import json
import os
import platform
from datetime import datetime, timezone
from pathlib import Path

#: Repository root (the parent of ``benchmarks/``): where BENCH_*.json live.
REPO_ROOT = Path(__file__).resolve().parent.parent


def machine_context() -> dict:
    """CPU count + python version, attached to every recorded entry."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    return {"cpus": cpus, "python": platform.python_version()}


def record_bench(
    name: str,
    rows: list[dict],
    *,
    meta: dict | None = None,
    root: Path | str | None = None,
) -> Path:
    """Append one benchmark entry to ``BENCH_<name>.json``; returns the path.

    ``rows`` is the run's measurement table (list of flat dicts);
    ``meta`` is optional run-level context (parameters, gate results).
    Creates the file on first use, appends thereafter.
    """
    path = Path(root or REPO_ROOT) / f"BENCH_{name}.json"
    if path.exists():
        payload = json.loads(path.read_text())
        if payload.get("bench") != name:
            raise ValueError(f"{path} records bench {payload.get('bench')!r}")
    else:
        payload = {"bench": name, "entries": []}
    payload["entries"].append(
        {
            "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "machine": machine_context(),
            "meta": meta or {},
            "rows": rows,
        }
    )
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
