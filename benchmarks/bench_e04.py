"""Benchmark: Figure 1 — duality (Theorem 1.3) (experiment E4).

Regenerates the experiment's table(s) under timing and asserts its
shape criteria (see DESIGN.md experiment index).
"""

from conftest import run_and_check


def test_bench_e04(benchmark):
    result = benchmark.pedantic(
        run_and_check, args=("E4",), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.all_passed
    assert result.tables
